package gpusim

import (
	"errors"
	"fmt"
	"sort"

	"grout/internal/memmodel"
	"grout/internal/sim"
)

// Regime classifies which migration regime a kernel launch executed in.
type Regime int

const (
	// Resident: working set fits in device memory.
	Resident Regime = iota
	// Streaming: oversubscribed but below the collapse threshold.
	Streaming
	// Storm: fault handling has collapsed (the paper's slowdown regime).
	Storm
)

func (r Regime) String() string {
	switch r {
	case Resident:
		return "resident"
	case Streaming:
		return "streaming"
	default:
		return "storm"
	}
}

// KernelCost is the execution-cost descriptor of a kernel.
type KernelCost struct {
	// Name labels the kernel in traces and stats.
	Name string
	// Elements is the number of logical work items (threads doing work).
	Elements int64
	// OpsPerElement is the per-element cost in device element-ops.
	OpsPerElement float64
}

// ArgBinding ties one kernel parameter to an allocation and describes how
// the kernel accesses it.
type ArgBinding struct {
	Alloc  AllocID
	Access memmodel.Access
}

// LaunchResult reports what a simulated kernel launch did and cost.
type LaunchResult struct {
	Interval      sim.Interval
	Regime        Regime
	Compute       sim.VirtualTime
	MemTime       sim.VirtualTime
	BytesMigrated memmodel.Bytes
	BytesEvicted  memmodel.Bytes
	Pressure      float64
}

// Node is a simulated multi-GPU server with UVM-managed memory.
type Node struct {
	spec      NodeSpec
	devices   []*Device
	allocs    map[AllocID]*alloc
	allocated memmodel.Bytes
	nextID    AllocID
}

// NewNode builds a node from its specification.
func NewNode(spec NodeSpec) *Node {
	n := &Node{
		spec:   spec,
		allocs: make(map[AllocID]*alloc),
		nextID: 1,
	}
	for i, ds := range spec.Devices {
		n.devices = append(n.devices, newDevice(ds, i))
	}
	return n
}

// Spec returns the node's static specification.
func (n *Node) Spec() NodeSpec { return n.spec }

// Devices returns the node's simulated GPUs.
func (n *Node) Devices() []*Device { return n.devices }

// Device returns device i; it panics on a bad index (scheduler bug).
func (n *Node) Device(i int) *Device {
	if i < 0 || i >= len(n.devices) {
		panic(fmt.Sprintf("gpusim: node %s has no device %d", n.spec.Name, i))
	}
	return n.devices[i]
}

// AllocatedBytes reports total live UVM allocation on the node.
func (n *Node) AllocatedBytes() memmodel.Bytes { return n.allocated }

// ErrHostMemoryExhausted is returned by Alloc when the node's host memory
// cannot hold the new allocation.
var ErrHostMemoryExhausted = errors.New("gpusim: host memory exhausted")

// Alloc creates a UVM allocation of the given size, initially resident in
// host memory, and returns its ID.
func (n *Node) Alloc(size memmodel.Bytes) (AllocID, error) {
	if size <= 0 {
		return 0, fmt.Errorf("gpusim: invalid allocation size %d", int64(size))
	}
	if n.allocated+size > n.spec.HostMemory {
		return 0, fmt.Errorf("%w: %v + %v > %v", ErrHostMemoryExhausted,
			n.allocated, size, n.spec.HostMemory)
	}
	id := n.nextID
	n.nextID++
	n.allocs[id] = newAlloc(id, size, len(n.devices))
	n.allocated += size
	return id, nil
}

// AllocWithID creates an allocation under a caller-chosen ID (used by the
// distributed runtime to mirror global array IDs onto workers).
func (n *Node) AllocWithID(id AllocID, size memmodel.Bytes) error {
	if _, exists := n.allocs[id]; exists {
		return fmt.Errorf("gpusim: allocation %d already exists on %s", id, n.spec.Name)
	}
	if size <= 0 {
		return fmt.Errorf("gpusim: invalid allocation size %d", int64(size))
	}
	if n.allocated+size > n.spec.HostMemory {
		return fmt.Errorf("%w: %v + %v > %v", ErrHostMemoryExhausted,
			n.allocated, size, n.spec.HostMemory)
	}
	n.allocs[id] = newAlloc(id, size, len(n.devices))
	n.allocated += size
	if id >= n.nextID {
		n.nextID = id + 1
	}
	return nil
}

// Free releases an allocation and its device residency.
func (n *Node) Free(id AllocID) error {
	a, ok := n.allocs[id]
	if !ok {
		return fmt.Errorf("gpusim: free of unknown allocation %d", id)
	}
	for d, r := range a.residentOn {
		n.devices[d].residentPages -= r
	}
	n.allocated -= a.size
	delete(n.allocs, id)
	return nil
}

// AllocSize reports the size of an allocation.
func (n *Node) AllocSize(id AllocID) (memmodel.Bytes, error) {
	a, ok := n.allocs[id]
	if !ok {
		return 0, fmt.Errorf("gpusim: unknown allocation %d", id)
	}
	return a.size, nil
}

// SetAdvise applies a cudaMemAdvise-style hint to an allocation.
// preferredDevice is only meaningful for AdvisePreferredLocation.
func (n *Node) SetAdvise(id AllocID, adv Advise, preferredDevice int) error {
	a, ok := n.allocs[id]
	if !ok {
		return fmt.Errorf("gpusim: advise on unknown allocation %d", id)
	}
	a.advise = adv
	a.preferred = preferredDevice
	return nil
}

// ResidentPagesOf reports how many pages of alloc id are resident on dev.
func (n *Node) ResidentPagesOf(id AllocID, dev int) int64 {
	a, ok := n.allocs[id]
	if !ok {
		return 0
	}
	return a.residentOn[dev]
}

// argPlan is the per-allocation working plan computed during a launch.
type argPlan struct {
	a        *alloc
	access   memmodel.Access
	touched  int64 // pages touched per pass
	hits     int64 // pages already resident on the target device
	missHost int64 // misses served from host
	missPeer int64 // misses served from a peer device
	peerDev  int
}

// Launch simulates one kernel launch on device dev, stream streamIdx. The
// launch may not start before ready (dependency barrier). It returns the
// occupied interval and a cost breakdown.
func (n *Node) Launch(dev, streamIdx int, k KernelCost, args []ArgBinding, ready sim.VirtualTime) (LaunchResult, error) {
	d := n.Device(dev)
	stream := d.Stream(streamIdx)

	// Aggregate accesses per allocation (a kernel may bind the same array
	// to several parameters; count its pages once, worst-case pattern).
	plans, err := n.buildPlans(dev, args)
	if err != nil {
		return LaunchResult{}, err
	}

	var working int64
	for _, p := range plans {
		working += p.touched
	}
	capacity := d.CapacityPages()

	// Pressure has two components. The kernel's own working set over
	// device capacity captures per-launch thrashing. The node's
	// allocated-over-available ratio is the paper's oversubscription
	// factor: once the UVM driver juggles far more allocation than
	// device memory, eviction churn degrades every substantial kernel,
	// not only the ones whose own set overflows. Small hot working sets
	// (under a quarter of the device) stay cached and are exempt.
	pressure := 0.0
	if capacity > 0 {
		pressure = float64(working) / float64(capacity)
		if working*4 >= capacity {
			if ap := n.allocationPressure(); ap > pressure {
				pressure = ap
			}
		}
	}

	regime := n.classify(plans, pressure)
	memTime, migrated, evicted := n.memoryCost(d, plans, regime, working, capacity, pressure)

	compute := d.spec.LaunchLatency
	if k.Elements > 0 && k.OpsPerElement > 0 && d.spec.Throughput > 0 {
		compute += secondsToVT(float64(k.Elements) * k.OpsPerElement / d.spec.Throughput)
	}

	// Demand-paged migration traffic serializes on the device's single
	// fault path, shared by all streams; the SMs then compute. With
	// every argument prefetched to its preferred location the copy
	// engines overlap the kernel instead.
	start := sim.Max(ready, stream.FreeAt())
	var end sim.VirtualTime
	if regime == Resident && n.allPreferredHere(plans, dev) {
		end = start + sim.Max(compute, memTime)
	} else if memTime > 0 {
		faultIv := d.faultEngine.Reserve(start, memTime)
		end = faultIv.End + compute
	} else {
		end = start + compute
	}
	interval := stream.Reserve(start, end-start)

	// Keep the copy engines accounted for (other explicit transfers queue
	// behind kernel-driven migration traffic).
	if migrated > 0 {
		d.h2d.Reserve(interval.Start, xferTime(migrated, d.spec.BulkBW))
	}
	if evicted > 0 {
		d.d2h.Reserve(interval.Start, xferTime(evicted, d.spec.BulkBW))
	}

	n.applyResidency(d, plans, working, capacity, interval.End)
	d.kernelsRun++

	return LaunchResult{
		Interval:      interval,
		Regime:        regime,
		Compute:       compute,
		MemTime:       memTime,
		BytesMigrated: migrated,
		BytesEvicted:  evicted,
		Pressure:      pressure,
	}, nil
}

// buildPlans validates bindings and computes per-allocation touch/miss
// figures against the target device.
func (n *Node) buildPlans(dev int, args []ArgBinding) ([]*argPlan, error) {
	byAlloc := make(map[AllocID]*argPlan)
	var order []*argPlan
	for _, b := range args {
		a, ok := n.allocs[b.Alloc]
		if !ok {
			return nil, fmt.Errorf("gpusim: launch references unknown allocation %d", b.Alloc)
		}
		acc := b.Access.Normalize()
		p, seen := byAlloc[b.Alloc]
		if !seen {
			p = &argPlan{a: a, access: acc, peerDev: hostLocation}
			byAlloc[b.Alloc] = p
			order = append(order, p)
		} else {
			// Merge: widen the mode, keep the costlier pattern, the
			// larger fraction and the larger pass count.
			if acc.Mode.Writes() && !p.access.Mode.Writes() {
				if p.access.Mode.Reads() || acc.Mode.Reads() {
					p.access.Mode = memmodel.ReadWrite
				} else {
					p.access.Mode = memmodel.Write
				}
			}
			if collapseThreshold(acc.Pattern) < collapseThreshold(p.access.Pattern) {
				p.access.Pattern = acc.Pattern
			}
			if acc.Fraction > p.access.Fraction {
				p.access.Fraction = acc.Fraction
			}
			if acc.Passes > p.access.Passes {
				p.access.Passes = acc.Passes
			}
		}
	}
	for _, p := range order {
		p.touched = p.access.TouchedPages(p.a.size)
		hits := p.a.residentOn[dev]
		if hits > p.touched {
			hits = p.touched
		}
		p.hits = hits
		miss := p.touched - hits
		// Serve misses from a peer device if the pages live there.
		for peer := range p.a.residentOn {
			if peer == dev || miss == 0 {
				continue
			}
			avail := p.a.residentOn[peer]
			take := avail
			if take > miss {
				take = miss
			}
			if take > 0 {
				p.missPeer += take
				p.peerDev = peer
				miss -= take
			}
		}
		p.missHost = miss
	}
	return order, nil
}

// allocationPressure is the node-level oversubscription factor: live UVM
// allocation over total device memory (the paper's x-axis).
func (n *Node) allocationPressure() float64 {
	total := n.spec.TotalDeviceMemory()
	if total <= 0 {
		return 0
	}
	return float64(n.allocated) / float64(total)
}

// residentTolerance absorbs the sliver of allocation pressure contributed
// by scalar plumbing arrays around an exactly-fitting working set.
const residentTolerance = 1.02

// classify picks the migration regime for a launch: the collapse threshold
// is the byte-weighted mean of the per-pattern thresholds, so a kernel
// dominated by a dense sweep tolerates more oversubscription than one
// dominated by random access.
func (n *Node) classify(plans []*argPlan, pressure float64) Regime {
	if pressure <= residentTolerance {
		return Resident
	}
	if pressure <= weightedThreshold(plans) {
		return Streaming
	}
	return Storm
}

// weightedThreshold is the byte-weighted mean of the per-pattern collapse
// thresholds over the kernel's arguments.
func weightedThreshold(plans []*argPlan) float64 {
	var weighted, total float64
	for _, p := range plans {
		w := float64(p.touched)
		weighted += w * collapseThreshold(p.access.Pattern)
		total += w
	}
	if total == 0 {
		return 2.0
	}
	return weighted / total
}

// memoryCost computes the serialized migration time and traffic volumes of
// a launch under the chosen regime.
func (n *Node) memoryCost(d *Device, plans []*argPlan, regime Regime, working, capacity int64, pressure float64) (memTime sim.VirtualTime, migrated, evicted memmodel.Bytes) {
	overflow := working - capacity
	if overflow < 0 {
		overflow = 0
	}
	// Past the collapse threshold, ping-pong worsens super-linearly with
	// the oversubscription factor (Fig. 1's exponential tail).
	stormPenalty := 1.0
	if regime == Storm {
		if w := weightedThreshold(plans); w > 0 && pressure > w {
			stormPenalty = pressure / w
		}
	}
	for _, p := range plans {
		eff := batchEfficiency(p.access.Pattern)
		passes := int64(p.access.Passes)
		writes := p.access.Mode.Writes()

		if p.a.advise == AdviseReadMostly && !writes {
			// Read-duplicated pages stream from host copies each pass at
			// bulk rate and never occupy device residency exclusively.
			traffic := bytesOf(p.touched * passes)
			memTime += xferTime(traffic, d.spec.BulkBW*eff)
			migrated += traffic
			continue
		}

		switch regime {
		case Resident:
			hostB := bytesOf(p.missHost)
			peerB := bytesOf(p.missPeer)
			memTime += xferTime(hostB, d.spec.BulkBW*eff)
			memTime += xferTime(peerB, d.spec.PeerBW*eff)
			migrated += hostB + peerB

		case Streaming:
			// First pass faults every miss; each further pass re-faults
			// this allocation's share of the overflow (LRU cycled it out).
			share := int64(0)
			if working > 0 {
				share = overflow * p.touched / working
			}
			cycled := p.missHost + p.missPeer + (passes-1)*share
			traffic := bytesOf(cycled)
			memTime += xferTime(traffic, d.spec.FaultBW*eff)
			migrated += traffic
			if writes && share > 0 {
				wb := bytesOf(share * passes)
				memTime += xferTime(wb, d.spec.FaultBW*eff)
				evicted += wb
			}

		case Storm:
			// Fault batching has collapsed: every pass re-migrates the
			// full touched set in splintered chunks, and dirty pages
			// ping-pong back.
			bw := d.spec.StormBW * stormEfficiency(p.access.Pattern) / stormPenalty
			traffic := bytesOf(p.touched * passes)
			memTime += xferTime(traffic, bw)
			migrated += traffic
			if writes {
				wb := bytesOf(p.touched * passes / 2)
				memTime += xferTime(wb, bw)
				evicted += wb
			}
		}
	}
	return memTime, migrated, evicted
}

// allPreferredHere reports whether every argument allocation is advised to
// prefer the launch device (the hand-tuned prefetch scenario).
func (n *Node) allPreferredHere(plans []*argPlan, dev int) bool {
	for _, p := range plans {
		if p.a.advise != AdvisePreferredLocation || p.a.preferred != dev {
			return false
		}
	}
	return len(plans) > 0
}

// applyResidency updates page accounting after a launch: argument pages
// become resident on the device (bounded by capacity, evicting LRU
// bystander allocations first), dirty bits reflect write accesses.
func (n *Node) applyResidency(d *Device, plans []*argPlan, working, capacity int64, now sim.VirtualTime) {
	dev := d.index
	inPlan := make(map[AllocID]bool, len(plans))
	var planned int64
	for _, p := range plans {
		if p.a.advise == AdviseReadMostly && !p.access.Mode.Writes() {
			continue // read-duplicated: does not claim residency
		}
		inPlan[p.a.id] = true
		planned += p.touched
	}

	// Evict bystanders (LRU) until the plan's resident target fits.
	target := planned
	if target > capacity {
		target = capacity
	}
	bystanders := d.residentPages - n.residentOfPlans(dev, inPlan)
	free := capacity - bystanders - n.residentOfPlans(dev, inPlan)
	need := target - n.residentOfPlans(dev, inPlan)
	if need > free {
		n.evictLRU(d, inPlan, need-free, now)
	}

	// Distribute residency among plan allocations. If everything fits
	// each keeps its touched set; otherwise they share capacity
	// proportionally (the cycling steady state).
	for _, p := range plans {
		if p.a.advise == AdviseReadMostly && !p.access.Mode.Writes() {
			p.a.lastUse[dev] = now
			continue
		}
		newResident := p.touched
		if planned > target && planned > 0 {
			newResident = target * p.touched / planned
		}
		n.setResident(d, p.a, newResident)
		if p.access.Mode.Writes() {
			p.a.dirtyOn[dev] = newResident
		} else if p.a.dirtyOn[dev] > newResident {
			p.a.dirtyOn[dev] = newResident
		}
		p.a.lastUse[dev] = now
		d.pagesMigratedIn += p.missHost + p.missPeer
		p.a.checkInvariants()
	}
}

// residentOfPlans sums current device residency of the plan allocations.
func (n *Node) residentOfPlans(dev int, inPlan map[AllocID]bool) int64 {
	var sum int64
	for id := range inPlan {
		sum += n.allocs[id].residentOn[dev]
	}
	return sum
}

// setResident adjusts an allocation's residency on a device. When pages
// move onto the device they are taken from the host first, then from the
// peer with the most copies (migration empties the source under UVM).
func (n *Node) setResident(d *Device, a *alloc, pages int64) {
	dev := d.index
	cur := a.residentOn[dev]
	if pages == cur {
		return
	}
	if pages < cur {
		// Shrink: pages fall back to host.
		delta := cur - pages
		a.residentOn[dev] = pages
		if a.dirtyOn[dev] > pages {
			d.pagesWrittenBack += a.dirtyOn[dev] - pages
			a.dirtyOn[dev] = pages
		}
		d.residentPages -= delta
		return
	}
	grow := pages - cur
	// Source from host.
	host := a.hostPages()
	fromHost := grow
	if fromHost > host {
		fromHost = host
	}
	grow -= fromHost
	// Then from peers.
	for peer := range a.residentOn {
		if grow == 0 {
			break
		}
		if peer == dev {
			continue
		}
		take := a.residentOn[peer]
		if take > grow {
			take = grow
		}
		if take > 0 {
			a.residentOn[peer] -= take
			if a.dirtyOn[peer] > a.residentOn[peer] {
				a.dirtyOn[peer] = a.residentOn[peer]
			}
			n.devices[peer].residentPages -= take
			grow -= take
		}
	}
	moved := pages - cur - grow // pages actually sourced
	a.residentOn[dev] = cur + moved
	d.residentPages += moved
}

// evictLRU evicts up to need pages of bystander allocations (not in the
// current plan), oldest last-use first. Dirty pages count as write-backs.
func (n *Node) evictLRU(d *Device, inPlan map[AllocID]bool, need int64, now sim.VirtualTime) {
	dev := d.index
	type victim struct {
		a    *alloc
		used sim.VirtualTime
	}
	var victims []victim
	for _, a := range n.allocs {
		if inPlan[a.id] || a.residentOn[dev] == 0 {
			continue
		}
		if a.advise == AdvisePreferredLocation && a.preferred == dev {
			continue // pinned
		}
		victims = append(victims, victim{a: a, used: a.lastUse[dev]})
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].used != victims[j].used {
			return victims[i].used < victims[j].used
		}
		return victims[i].a.id < victims[j].a.id
	})
	for _, v := range victims {
		if need <= 0 {
			return
		}
		take := v.a.residentOn[dev]
		if take > need {
			take = need
		}
		dirtyDrop := v.a.dirtyOn[dev]
		v.a.residentOn[dev] -= take
		if v.a.dirtyOn[dev] > v.a.residentOn[dev] {
			d.pagesWrittenBack += dirtyDrop - v.a.residentOn[dev]
			v.a.dirtyOn[dev] = v.a.residentOn[dev]
		}
		d.residentPages -= take
		d.pagesEvicted += take
		need -= take
		v.a.checkInvariants()
	}
}

// HostTouch simulates the host CPU reading or writing a fraction of an
// allocation (e.g. the controller initializing an array or consuming a
// result). Device-dirty pages flush back first; touched pages migrate to
// the host. Returns the interval occupied on the node's D2H engines.
func (n *Node) HostTouch(id AllocID, mode memmodel.AccessMode, fraction float64, ready sim.VirtualTime) (sim.Interval, error) {
	a, ok := n.allocs[id]
	if !ok {
		return sim.Interval{}, fmt.Errorf("gpusim: host touch of unknown allocation %d", id)
	}
	if fraction <= 0 || fraction > 1 {
		fraction = 1
	}
	end := ready
	start := sim.Infinity
	any := false
	for devIdx, dev := range n.devices {
		res := a.residentOn[devIdx]
		if res == 0 {
			continue
		}
		// CPU touch migrates the touched share of device pages home.
		pull := int64(float64(res) * fraction)
		if pull == 0 {
			continue
		}
		iv := dev.d2h.Reserve(ready, xferTime(bytesOf(pull), dev.spec.BulkBW))
		a.residentOn[devIdx] -= pull
		if a.dirtyOn[devIdx] > a.residentOn[devIdx] {
			dev.pagesWrittenBack += a.dirtyOn[devIdx] - a.residentOn[devIdx]
			a.dirtyOn[devIdx] = a.residentOn[devIdx]
		}
		dev.residentPages -= pull
		if iv.End > end {
			end = iv.End
		}
		if iv.Start < start {
			start = iv.Start
		}
		any = true
	}
	a.checkInvariants()
	if !any {
		start = ready
	}
	return sim.Interval{Start: start, End: end}, nil
}

// Prefetch simulates cudaMemPrefetchAsync: moves the allocation's host
// pages to the device at bulk bandwidth on the H2D engine (up to free
// capacity; no eviction is forced by a prefetch).
func (n *Node) Prefetch(id AllocID, dev int, ready sim.VirtualTime) (sim.Interval, error) {
	a, ok := n.allocs[id]
	if !ok {
		return sim.Interval{}, fmt.Errorf("gpusim: prefetch of unknown allocation %d", id)
	}
	d := n.Device(dev)
	pull := a.hostPages()
	if free := d.FreePages(); pull > free {
		pull = free
	}
	if pull <= 0 {
		return sim.Interval{Start: ready, End: ready}, nil
	}
	iv := d.h2d.Reserve(ready, xferTime(bytesOf(pull), d.spec.BulkBW))
	a.residentOn[dev] += pull
	d.residentPages += pull
	d.pagesMigratedIn += pull
	a.lastUse[dev] = iv.End
	a.checkInvariants()
	return iv, nil
}

// FlushForSend prepares an allocation for network transmission: all dirty
// device pages are written back so the host copy is coherent. Residency is
// retained (pages stay cached clean). Returns when the host copy is ready.
func (n *Node) FlushForSend(id AllocID, ready sim.VirtualTime) (sim.VirtualTime, error) {
	a, ok := n.allocs[id]
	if !ok {
		return 0, fmt.Errorf("gpusim: flush of unknown allocation %d", id)
	}
	end := ready
	for devIdx, dev := range n.devices {
		dirty := a.dirtyOn[devIdx]
		if dirty == 0 {
			continue
		}
		iv := dev.d2h.Reserve(ready, xferTime(bytesOf(dirty), dev.spec.BulkBW))
		dev.pagesWrittenBack += dirty
		a.dirtyOn[devIdx] = 0
		if iv.End > end {
			end = iv.End
		}
	}
	return end, nil
}

// Invalidate marks an allocation's device copies stale (the host copy was
// just overwritten, e.g. by a network receive): device pages are dropped
// without write-back.
func (n *Node) Invalidate(id AllocID) error {
	a, ok := n.allocs[id]
	if !ok {
		return fmt.Errorf("gpusim: invalidate of unknown allocation %d", id)
	}
	for devIdx, dev := range n.devices {
		dev.residentPages -= a.residentOn[devIdx]
		a.residentOn[devIdx] = 0
		a.dirtyOn[devIdx] = 0
	}
	a.checkInvariants()
	return nil
}

// CheckInvariants verifies global page accounting; tests call it after
// mutation sequences.
func (n *Node) CheckInvariants() error {
	perDev := make([]int64, len(n.devices))
	for _, a := range n.allocs {
		a.checkInvariants()
		for d, r := range a.residentOn {
			perDev[d] += r
		}
	}
	for i, d := range n.devices {
		if perDev[i] != d.residentPages {
			return fmt.Errorf("gpusim: device %d resident mismatch: sum %d, counter %d",
				i, perDev[i], d.residentPages)
		}
		if d.residentPages > d.CapacityPages() {
			return fmt.Errorf("gpusim: device %d over capacity: %d > %d",
				i, d.residentPages, d.CapacityPages())
		}
		if d.residentPages < 0 {
			return fmt.Errorf("gpusim: device %d negative residency %d", i, d.residentPages)
		}
	}
	return nil
}
