package gpusim

import (
	"errors"
	"fmt"
	"sort"

	"grout/internal/memmodel"
	"grout/internal/sim"
)

// Regime classifies which migration regime a kernel launch executed in.
type Regime int

const (
	// Resident: working set fits in device memory.
	Resident Regime = iota
	// Streaming: oversubscribed but below the collapse threshold.
	Streaming
	// Storm: fault handling has collapsed (the paper's slowdown regime).
	Storm
)

func (r Regime) String() string {
	switch r {
	case Resident:
		return "resident"
	case Streaming:
		return "streaming"
	default:
		return "storm"
	}
}

// KernelCost is the execution-cost descriptor of a kernel.
type KernelCost struct {
	// Name labels the kernel in traces and stats.
	Name string
	// Elements is the number of logical work items (threads doing work).
	Elements int64
	// OpsPerElement is the per-element cost in device element-ops.
	OpsPerElement float64
}

// ArgBinding ties one kernel parameter to an allocation and describes how
// the kernel accesses it.
type ArgBinding struct {
	Alloc  AllocID
	Access memmodel.Access
}

// LaunchResult reports what a simulated kernel launch did and cost.
type LaunchResult struct {
	Interval      sim.Interval
	Regime        Regime
	Compute       sim.VirtualTime
	MemTime       sim.VirtualTime
	BytesMigrated memmodel.Bytes
	BytesEvicted  memmodel.Bytes
	Pressure      float64
}

// Node is a simulated multi-GPU server with UVM-managed memory.
type Node struct {
	spec      NodeSpec
	devices   []*Device
	allocs    map[AllocID]*alloc
	allocated memmodel.Bytes
	nextID    AllocID
	// prefetch and evict are the node's memory-management policies; the
	// defaults reproduce the pre-policy simulator bit for bit.
	prefetch PrefetchPolicy
	evict    EvictionPolicy
}

// NewNode builds a node from its specification, with the baseline
// (eager/LRU) memory policies.
func NewNode(spec NodeSpec) *Node {
	n := &Node{
		spec:     spec,
		allocs:   make(map[AllocID]*alloc),
		nextID:   1,
		prefetch: eagerPrefetch{},
		evict:    lruEviction{},
	}
	for i, ds := range spec.Devices {
		n.devices = append(n.devices, newDevice(ds, i))
	}
	return n
}

// SetMemoryPolicies installs prefetch and eviction policies; nil keeps
// the current one.
func (n *Node) SetMemoryPolicies(p PrefetchPolicy, e EvictionPolicy) {
	if p != nil {
		n.prefetch = p
	}
	if e != nil {
		n.evict = e
	}
}

// UseMemoryPolicies installs policies by registry name; empty names keep
// the baselines. Unknown names are a typed error, never a silent
// fallback.
func (n *Node) UseMemoryPolicies(prefetchName, evictName string) error {
	p, err := NewPrefetchPolicy(prefetchName)
	if err != nil {
		return err
	}
	e, err := NewEvictionPolicy(evictName)
	if err != nil {
		return err
	}
	n.SetMemoryPolicies(p, e)
	return nil
}

// MemoryPolicies reports the installed policy names.
func (n *Node) MemoryPolicies() (prefetch, evict string) {
	return n.prefetch.Name(), n.evict.Name()
}

// History returns the fault/reuse history ring of an allocation, or nil
// for an unknown ID. The ring stays owned by the node; callers must not
// retain it past the allocation's Free.
func (n *Node) History(id AllocID) *AllocHistory {
	a, ok := n.allocs[id]
	if !ok {
		return nil
	}
	return &a.hist
}

// Spec returns the node's static specification.
func (n *Node) Spec() NodeSpec { return n.spec }

// Devices returns the node's simulated GPUs.
func (n *Node) Devices() []*Device { return n.devices }

// Device returns device i; it panics on a bad index (scheduler bug).
func (n *Node) Device(i int) *Device {
	if i < 0 || i >= len(n.devices) {
		panic(fmt.Sprintf("gpusim: node %s has no device %d", n.spec.Name, i))
	}
	return n.devices[i]
}

// AllocatedBytes reports total live UVM allocation on the node.
func (n *Node) AllocatedBytes() memmodel.Bytes { return n.allocated }

// ErrHostMemoryExhausted is returned by Alloc when the node's host memory
// cannot hold the new allocation.
var ErrHostMemoryExhausted = errors.New("gpusim: host memory exhausted")

// Alloc creates a UVM allocation of the given size, initially resident in
// host memory, and returns its ID.
func (n *Node) Alloc(size memmodel.Bytes) (AllocID, error) {
	if size <= 0 {
		return 0, fmt.Errorf("gpusim: invalid allocation size %d", int64(size))
	}
	if n.allocated+size > n.spec.HostMemory {
		return 0, fmt.Errorf("%w: %v + %v > %v", ErrHostMemoryExhausted,
			n.allocated, size, n.spec.HostMemory)
	}
	id := n.nextID
	n.nextID++
	n.allocs[id] = newAlloc(id, size, len(n.devices))
	n.allocated += size
	return id, nil
}

// AllocWithID creates an allocation under a caller-chosen ID (used by the
// distributed runtime to mirror global array IDs onto workers).
func (n *Node) AllocWithID(id AllocID, size memmodel.Bytes) error {
	if _, exists := n.allocs[id]; exists {
		return fmt.Errorf("gpusim: allocation %d already exists on %s", id, n.spec.Name)
	}
	if size <= 0 {
		return fmt.Errorf("gpusim: invalid allocation size %d", int64(size))
	}
	if n.allocated+size > n.spec.HostMemory {
		return fmt.Errorf("%w: %v + %v > %v", ErrHostMemoryExhausted,
			n.allocated, size, n.spec.HostMemory)
	}
	n.allocs[id] = newAlloc(id, size, len(n.devices))
	n.allocated += size
	if id >= n.nextID {
		n.nextID = id + 1
	}
	return nil
}

// Free releases an allocation and its device residency.
func (n *Node) Free(id AllocID) error {
	a, ok := n.allocs[id]
	if !ok {
		return fmt.Errorf("gpusim: free of unknown allocation %d", id)
	}
	for d, r := range a.residentOn {
		n.devices[d].residentPages -= r
	}
	n.allocated -= a.size
	delete(n.allocs, id)
	return nil
}

// AllocSize reports the size of an allocation.
func (n *Node) AllocSize(id AllocID) (memmodel.Bytes, error) {
	a, ok := n.allocs[id]
	if !ok {
		return 0, fmt.Errorf("gpusim: unknown allocation %d", id)
	}
	return a.size, nil
}

// SetAdvise applies a cudaMemAdvise-style hint to an allocation.
// preferredDevice is only meaningful for AdvisePreferredLocation. Unknown
// advise values and out-of-range preferred devices are rejected with
// typed errors — hints arrive over the wire, and a value the enum does
// not know must not silently become a no-op hint.
func (n *Node) SetAdvise(id AllocID, adv Advise, preferredDevice int) error {
	a, ok := n.allocs[id]
	if !ok {
		return fmt.Errorf("gpusim: advise on unknown allocation %d", id)
	}
	if !adv.Valid() {
		return fmt.Errorf("%w: %d", ErrUnknownAdvise, int(adv))
	}
	if adv == AdvisePreferredLocation && (preferredDevice < 0 || preferredDevice >= len(n.devices)) {
		return fmt.Errorf("%w: preferred device %d out of range [0,%d)",
			ErrBadPreferredDevice, preferredDevice, len(n.devices))
	}
	a.advise = adv
	a.preferred = preferredDevice
	return nil
}

// ResidentPagesOf reports how many pages of alloc id are resident on dev.
func (n *Node) ResidentPagesOf(id AllocID, dev int) int64 {
	a, ok := n.allocs[id]
	if !ok {
		return 0
	}
	return a.residentOn[dev]
}

// argPlan is the per-allocation working plan computed during a launch.
type argPlan struct {
	a        *alloc
	access   memmodel.Access
	touched  int64 // pages touched per pass
	hits     int64 // pages already resident on the target device
	missHost int64 // misses served from host
	missPeer int64 // misses served from a peer device
	peerDev  int
	// dec is the prefetch policy's decision for this plan.
	dec PrefetchDecision
}

// view builds the policy-facing projection of the plan.
func (p *argPlan) view(pressure float64) PlanView {
	return PlanView{
		Alloc:    p.a.id,
		Pattern:  p.access.Pattern,
		Mode:     p.access.Mode,
		Fraction: p.access.Fraction,
		Passes:   p.access.Passes,
		Touched:  p.touched,
		Hits:     p.hits,
		MissHost: p.missHost,
		MissPeer: p.missPeer,
		Pressure: pressure,
		Hist:     &p.a.hist,
	}
}

// Launch simulates one kernel launch on device dev, stream streamIdx. The
// launch may not start before ready (dependency barrier). It returns the
// occupied interval and a cost breakdown.
func (n *Node) Launch(dev, streamIdx int, k KernelCost, args []ArgBinding, ready sim.VirtualTime) (LaunchResult, error) {
	d := n.Device(dev)
	stream := d.Stream(streamIdx)

	// Aggregate accesses per allocation (a kernel may bind the same array
	// to several parameters; count its pages once, worst-case pattern).
	plans, err := n.buildPlans(dev, args)
	if err != nil {
		return LaunchResult{}, err
	}

	var working int64
	for _, p := range plans {
		working += p.touched
	}
	capacity := d.CapacityPages()

	// Pressure has two components. The kernel's own working set over
	// device capacity captures per-launch thrashing. The node's
	// allocated-over-available ratio is the paper's oversubscription
	// factor: once the UVM driver juggles far more allocation than
	// device memory, eviction churn degrades every substantial kernel,
	// not only the ones whose own set overflows. Small hot working sets
	// (under a quarter of the device) stay cached and are exempt.
	pressure := 0.0
	if capacity > 0 {
		pressure = float64(working) / float64(capacity)
		if working*4 >= capacity {
			if ap := n.allocationPressure(); ap > pressure {
				pressure = ap
			}
		}
	}

	// Ask the prefetch policy what share of each plan's traffic it moves
	// ahead of the access front, and how far that shifts the collapse
	// threshold. Decisions see the allocation's online fault history.
	for _, p := range plans {
		p.dec = n.prefetch.Decide(p.view(pressure)).normalize()
	}

	regime := n.classify(plans, pressure)
	memTime, overlap, migrated, prefetched, evicted := n.memoryCost(d, plans, regime, working, capacity, pressure)

	compute := d.spec.LaunchLatency
	if k.Elements > 0 && k.OpsPerElement > 0 && d.spec.Throughput > 0 {
		compute += secondsToVT(float64(k.Elements) * k.OpsPerElement / d.spec.Throughput)
	}

	// Demand-paged migration traffic serializes on the device's single
	// fault path, shared by all streams; the SMs then compute. Traffic
	// the prefetch policy moves ahead of the front — and, with every
	// argument advised to its preferred location, all of it — rides the
	// copy engines overlapping the kernel instead.
	start := sim.Max(ready, stream.FreeAt())
	var end sim.VirtualTime
	if regime == Resident && n.allPreferredHere(plans, dev) {
		end = start + sim.Max(compute, memTime+overlap)
	} else {
		end = start
		if memTime > 0 {
			end = d.faultEngine.Reserve(start, memTime).End
		}
		end += compute
		if overlap > 0 {
			if oiv := d.h2d.Reserve(start, overlap); oiv.End > end {
				end = oiv.End
			}
		}
	}
	interval := stream.Reserve(start, end-start)

	// Keep the copy engines accounted for (other explicit transfers queue
	// behind kernel-driven migration traffic). The prefetched share was
	// already reserved above as overlap; booking it again would double-
	// charge the H2D engine.
	if rem := migrated - prefetched; rem > 0 {
		d.h2d.Reserve(interval.Start, xferTime(rem, d.spec.BulkBW))
	}
	if evicted > 0 {
		d.d2h.Reserve(interval.Start, xferTime(evicted, d.spec.BulkBW))
	}

	n.applyResidency(d, plans, working, capacity, regime, pressure, interval.End)
	d.kernelsRun++

	// Feed the online history ring: what each allocation's launch looked
	// like to the fault engine. Recorded under every policy — the ring is
	// observability; it never changes baseline costs.
	for _, p := range plans {
		p.a.hist.record(FaultRecord{
			Time:    interval.End,
			Device:  dev,
			Pattern: p.access.Pattern,
			Regime:  regime,
			Touched: p.touched,
			Missed:  p.missHost + p.missPeer,
		})
	}

	return LaunchResult{
		Interval:      interval,
		Regime:        regime,
		Compute:       compute,
		MemTime:       memTime + overlap,
		BytesMigrated: migrated,
		BytesEvicted:  evicted,
		Pressure:      pressure,
	}, nil
}

// buildPlans validates bindings and computes per-allocation touch/miss
// figures against the target device.
func (n *Node) buildPlans(dev int, args []ArgBinding) ([]*argPlan, error) {
	byAlloc := make(map[AllocID]*argPlan)
	var order []*argPlan
	for _, b := range args {
		a, ok := n.allocs[b.Alloc]
		if !ok {
			return nil, fmt.Errorf("gpusim: launch references unknown allocation %d", b.Alloc)
		}
		acc := b.Access.Normalize()
		p, seen := byAlloc[b.Alloc]
		if !seen {
			p = &argPlan{a: a, access: acc, peerDev: hostLocation}
			byAlloc[b.Alloc] = p
			order = append(order, p)
		} else {
			// Merge: widen the mode, keep the costlier pattern, the
			// larger fraction and the larger pass count.
			if acc.Mode.Writes() && !p.access.Mode.Writes() {
				if p.access.Mode.Reads() || acc.Mode.Reads() {
					p.access.Mode = memmodel.ReadWrite
				} else {
					p.access.Mode = memmodel.Write
				}
			}
			if collapseThreshold(acc.Pattern) < collapseThreshold(p.access.Pattern) {
				p.access.Pattern = acc.Pattern
			}
			if acc.Fraction > p.access.Fraction {
				p.access.Fraction = acc.Fraction
			}
			if acc.Passes > p.access.Passes {
				p.access.Passes = acc.Passes
			}
		}
	}
	for _, p := range order {
		p.touched = p.access.TouchedPages(p.a.size)
		hits := p.a.residentOn[dev]
		if hits > p.touched {
			hits = p.touched
		}
		p.hits = hits
		miss := p.touched - hits
		// Serve misses from a peer device if the pages live there.
		for peer := range p.a.residentOn {
			if peer == dev || miss == 0 {
				continue
			}
			avail := p.a.residentOn[peer]
			take := avail
			if take > miss {
				take = miss
			}
			if take > 0 {
				p.missPeer += take
				p.peerDev = peer
				miss -= take
			}
		}
		p.missHost = miss
	}
	return order, nil
}

// allocationPressure is the node-level oversubscription factor: live UVM
// allocation over total device memory (the paper's x-axis).
func (n *Node) allocationPressure() float64 {
	total := n.spec.TotalDeviceMemory()
	if total <= 0 {
		return 0
	}
	return float64(n.allocated) / float64(total)
}

// residentTolerance absorbs the sliver of allocation pressure contributed
// by scalar plumbing arrays around an exactly-fitting working set.
const residentTolerance = 1.02

// classify picks the migration regime for a launch: the collapse threshold
// is the byte-weighted mean of the per-pattern thresholds, so a kernel
// dominated by a dense sweep tolerates more oversubscription than one
// dominated by random access.
func (n *Node) classify(plans []*argPlan, pressure float64) Regime {
	if pressure <= residentTolerance {
		return Resident
	}
	if pressure <= weightedThreshold(plans) {
		return Streaming
	}
	return Storm
}

// weightedThreshold is the byte-weighted mean of the per-pattern collapse
// thresholds over the kernel's arguments, each scaled by the prefetch
// policy's threshold shift (1 under the baseline).
func weightedThreshold(plans []*argPlan) float64 {
	var weighted, total float64
	for _, p := range plans {
		w := float64(p.touched)
		weighted += w * collapseThreshold(p.access.Pattern) * p.dec.ThresholdScale
		total += w
	}
	if total == 0 {
		return 2.0
	}
	return weighted / total
}

// memoryCost computes the migration time and traffic volumes of a launch
// under the chosen regime. memTime is serialized on the fault engine;
// overlap is traffic the prefetch policy moves at bulk rate concurrently
// with compute (zero under the baseline, whose demand paging serializes
// everything); prefetched is the byte share of migrated carried by that
// overlap, so the caller does not book it on the copy engine twice.
func (n *Node) memoryCost(d *Device, plans []*argPlan, regime Regime, working, capacity int64, pressure float64) (memTime, overlap sim.VirtualTime, migrated, prefetched, evicted memmodel.Bytes) {
	overflow := working - capacity
	if overflow < 0 {
		overflow = 0
	}
	// Past the collapse threshold, ping-pong worsens super-linearly with
	// the oversubscription factor (Fig. 1's exponential tail).
	stormPenalty := 1.0
	if regime == Storm {
		if w := weightedThreshold(plans); w > 0 && pressure > w {
			stormPenalty = pressure / w
		}
	}
	for _, p := range plans {
		eff := batchEfficiency(p.access.Pattern)
		passes := int64(p.access.Passes)
		writes := p.access.Mode.Writes()
		bf := p.dec.BulkFraction

		if p.a.advise == AdviseReadMostly && !writes {
			// Read-duplicated pages stream from host copies each pass at
			// bulk rate and never occupy device residency exclusively.
			traffic := bytesOf(p.touched * passes)
			memTime += xferTime(traffic, d.spec.BulkBW*eff)
			migrated += traffic
			continue
		}

		switch regime {
		case Resident:
			// Misses already coalesce at bulk rate; the prefetch policy's
			// share moves ahead of the front, overlapping compute instead
			// of stalling it.
			aheadHost := int64(bf * float64(p.missHost))
			aheadPeer := int64(bf * float64(p.missPeer))
			memTime += xferTime(bytesOf(p.missHost-aheadHost), d.spec.BulkBW*eff)
			memTime += xferTime(bytesOf(p.missPeer-aheadPeer), d.spec.PeerBW*eff)
			overlap += xferTime(bytesOf(aheadHost), d.spec.BulkBW*eff)
			overlap += xferTime(bytesOf(aheadPeer), d.spec.PeerBW*eff)
			migrated += bytesOf(p.missHost) + bytesOf(p.missPeer)
			prefetched += bytesOf(aheadHost + aheadPeer)

		case Streaming:
			// First pass faults every miss; each further pass re-faults
			// this allocation's share of the overflow (LRU cycled it out).
			// The prefetched share of that traffic coalesces at bulk rate
			// and overlaps compute — the streaming-regime re-migration
			// turns into overlap instead of stall.
			share := int64(0)
			if working > 0 {
				share = overflow * p.touched / working
			}
			cycled := p.missHost + p.missPeer + (passes-1)*share
			ahead := int64(bf * float64(cycled))
			memTime += xferTime(bytesOf(cycled-ahead), d.spec.FaultBW*eff)
			overlap += xferTime(bytesOf(ahead), d.spec.BulkBW*eff)
			migrated += bytesOf(cycled)
			prefetched += bytesOf(ahead)
			if writes && share > 0 {
				wb := bytesOf(share * passes)
				memTime += xferTime(wb, d.spec.FaultBW*eff)
				evicted += wb
			}

		case Storm:
			// Fault batching has collapsed: every pass re-migrates the
			// full touched set in splintered chunks, and dirty pages
			// ping-pong back. Prefetching is defeated here — a policy's
			// lever against the storm is its threshold shift, not its
			// bulk fraction.
			bw := d.spec.StormBW * stormEfficiency(p.access.Pattern) / stormPenalty
			traffic := bytesOf(p.touched * passes)
			memTime += xferTime(traffic, bw)
			migrated += traffic
			if writes {
				wb := bytesOf(p.touched * passes / 2)
				memTime += xferTime(wb, bw)
				evicted += wb
			}
		}
	}
	return memTime, overlap, migrated, prefetched, evicted
}

// allPreferredHere reports whether every argument allocation is advised to
// prefer the launch device (the hand-tuned prefetch scenario).
func (n *Node) allPreferredHere(plans []*argPlan, dev int) bool {
	for _, p := range plans {
		if p.a.advise != AdvisePreferredLocation || p.a.preferred != dev {
			return false
		}
	}
	return len(plans) > 0
}

// applyResidency updates page accounting after a launch: argument pages
// become resident on the device (bounded by capacity, evicting bystander
// allocations in the eviction policy's victim order first), dirty bits
// reflect write accesses, and the policy's retention decision governs how
// much of its share each plan keeps behind the access front.
func (n *Node) applyResidency(d *Device, plans []*argPlan, working, capacity int64, regime Regime, pressure float64, now sim.VirtualTime) {
	dev := d.index
	inPlan := make(map[AllocID]bool, len(plans))
	var planned int64
	for _, p := range plans {
		if p.a.advise == AdviseReadMostly && !p.access.Mode.Writes() {
			continue // read-duplicated: does not claim residency
		}
		inPlan[p.a.id] = true
		planned += p.touched
	}

	// Evict bystanders until the plan's resident target fits.
	target := planned
	if target > capacity {
		target = capacity
	}
	bystanders := d.residentPages - n.residentOfPlans(dev, inPlan)
	free := capacity - bystanders - n.residentOfPlans(dev, inPlan)
	need := target - n.residentOfPlans(dev, inPlan)
	if need > free {
		n.evictVictims(d, inPlan, need-free, now)
	}

	// Distribute residency among plan allocations. If everything fits
	// each keeps its touched set; otherwise they share capacity
	// proportionally (the cycling steady state). The eviction policy may
	// scale a plan's share down — self-eviction behind a dense front.
	for _, p := range plans {
		if p.a.advise == AdviseReadMostly && !p.access.Mode.Writes() {
			p.a.lastUse[dev] = now
			continue
		}
		newResident := p.touched
		if planned > target && planned > 0 {
			newResident = target * p.touched / planned
		}
		if r := clampRetention(n.evict.Retention(p.view(pressure), regime)); r < 1 {
			newResident = int64(r * float64(newResident))
		}
		n.setResident(d, p.a, newResident)
		if p.access.Mode.Writes() {
			p.a.dirtyOn[dev] = newResident
		} else if p.a.dirtyOn[dev] > newResident {
			p.a.dirtyOn[dev] = newResident
		}
		p.a.lastUse[dev] = now
		d.pagesMigratedIn += p.missHost + p.missPeer
		p.a.checkInvariants()
	}
}

// residentOfPlans sums current device residency of the plan allocations.
func (n *Node) residentOfPlans(dev int, inPlan map[AllocID]bool) int64 {
	var sum int64
	for id := range inPlan {
		sum += n.allocs[id].residentOn[dev]
	}
	return sum
}

// setResident adjusts an allocation's residency on a device. When pages
// move onto the device they are taken from the host first, then from the
// peer with the most copies (migration empties the source under UVM).
func (n *Node) setResident(d *Device, a *alloc, pages int64) {
	dev := d.index
	cur := a.residentOn[dev]
	if pages == cur {
		return
	}
	if pages < cur {
		// Shrink: pages fall back to host.
		delta := cur - pages
		a.residentOn[dev] = pages
		if a.dirtyOn[dev] > pages {
			d.pagesWrittenBack += a.dirtyOn[dev] - pages
			a.dirtyOn[dev] = pages
		}
		d.residentPages -= delta
		return
	}
	grow := pages - cur
	// Source from host.
	host := a.hostPages()
	fromHost := grow
	if fromHost > host {
		fromHost = host
	}
	grow -= fromHost
	// Then from peers.
	for peer := range a.residentOn {
		if grow == 0 {
			break
		}
		if peer == dev {
			continue
		}
		take := a.residentOn[peer]
		if take > grow {
			take = grow
		}
		if take > 0 {
			a.residentOn[peer] -= take
			if a.dirtyOn[peer] > a.residentOn[peer] {
				a.dirtyOn[peer] = a.residentOn[peer]
			}
			n.devices[peer].residentPages -= take
			grow -= take
		}
	}
	moved := pages - cur - grow // pages actually sourced
	a.residentOn[dev] = cur + moved
	d.residentPages += moved
}

// evictVictims evicts up to need pages of bystander allocations (not in
// the current plan), in the eviction policy's victim order — least
// recently used first under the baseline. Pinned allocations
// (AdvisePreferredLocation on this device) and plan members are never
// victims regardless of policy: the node enforces that invariant here so
// a buggy policy cannot break it. Dirty pages count as write-backs.
func (n *Node) evictVictims(d *Device, inPlan map[AllocID]bool, need int64, now sim.VirtualTime) {
	dev := d.index
	type victim struct {
		a    *alloc
		view VictimView
	}
	var victims []victim
	for _, a := range n.allocs {
		if inPlan[a.id] || a.residentOn[dev] == 0 {
			continue
		}
		if a.advise == AdvisePreferredLocation && a.preferred == dev {
			continue // pinned
		}
		victims = append(victims, victim{a: a, view: VictimView{
			Alloc:    a.id,
			LastUse:  a.lastUse[dev],
			Resident: a.residentOn[dev],
			Dirty:    a.dirtyOn[dev],
			Hist:     &a.hist,
		}})
	}
	sort.Slice(victims, func(i, j int) bool {
		return n.evict.Less(victims[i].view, victims[j].view)
	})
	for _, v := range victims {
		if need <= 0 {
			return
		}
		take := v.a.residentOn[dev]
		if take > need {
			take = need
		}
		dirtyDrop := v.a.dirtyOn[dev]
		v.a.residentOn[dev] -= take
		if v.a.dirtyOn[dev] > v.a.residentOn[dev] {
			d.pagesWrittenBack += dirtyDrop - v.a.residentOn[dev]
			v.a.dirtyOn[dev] = v.a.residentOn[dev]
		}
		d.residentPages -= take
		d.pagesEvicted += take
		need -= take
		v.a.checkInvariants()
	}
}

// HostTouch simulates the host CPU reading or writing a fraction of an
// allocation (e.g. the controller initializing an array or consuming a
// result). Device-dirty pages flush back first; touched pages migrate to
// the host. Returns the interval occupied on the node's D2H engines.
func (n *Node) HostTouch(id AllocID, mode memmodel.AccessMode, fraction float64, ready sim.VirtualTime) (sim.Interval, error) {
	a, ok := n.allocs[id]
	if !ok {
		return sim.Interval{}, fmt.Errorf("gpusim: host touch of unknown allocation %d", id)
	}
	if fraction <= 0 || fraction > 1 {
		fraction = 1
	}
	end := ready
	start := sim.Infinity
	any := false
	for devIdx, dev := range n.devices {
		res := a.residentOn[devIdx]
		if res == 0 {
			continue
		}
		// CPU touch migrates the touched share of device pages home.
		pull := int64(float64(res) * fraction)
		if pull == 0 {
			continue
		}
		iv := dev.d2h.Reserve(ready, xferTime(bytesOf(pull), dev.spec.BulkBW))
		a.residentOn[devIdx] -= pull
		if a.dirtyOn[devIdx] > a.residentOn[devIdx] {
			dev.pagesWrittenBack += a.dirtyOn[devIdx] - a.residentOn[devIdx]
			a.dirtyOn[devIdx] = a.residentOn[devIdx]
		}
		dev.residentPages -= pull
		if iv.End > end {
			end = iv.End
		}
		if iv.Start < start {
			start = iv.Start
		}
		any = true
	}
	a.checkInvariants()
	if !any {
		start = ready
	}
	return sim.Interval{Start: start, End: end}, nil
}

// Prefetch simulates cudaMemPrefetchAsync: moves the allocation's host
// pages to the device at bulk bandwidth on the H2D engine (up to free
// capacity; no eviction is forced by a prefetch).
func (n *Node) Prefetch(id AllocID, dev int, ready sim.VirtualTime) (sim.Interval, error) {
	a, ok := n.allocs[id]
	if !ok {
		return sim.Interval{}, fmt.Errorf("gpusim: prefetch of unknown allocation %d", id)
	}
	d := n.Device(dev)
	pull := a.hostPages()
	if free := d.FreePages(); pull > free {
		pull = free
	}
	if pull <= 0 {
		return sim.Interval{Start: ready, End: ready}, nil
	}
	iv := d.h2d.Reserve(ready, xferTime(bytesOf(pull), d.spec.BulkBW))
	a.residentOn[dev] += pull
	d.residentPages += pull
	d.pagesMigratedIn += pull
	a.lastUse[dev] = iv.End
	a.checkInvariants()
	return iv, nil
}

// FlushForSend prepares an allocation for network transmission: all dirty
// device pages are written back so the host copy is coherent. Residency is
// retained (pages stay cached clean). Returns when the host copy is ready.
func (n *Node) FlushForSend(id AllocID, ready sim.VirtualTime) (sim.VirtualTime, error) {
	a, ok := n.allocs[id]
	if !ok {
		return 0, fmt.Errorf("gpusim: flush of unknown allocation %d", id)
	}
	end := ready
	for devIdx, dev := range n.devices {
		dirty := a.dirtyOn[devIdx]
		if dirty == 0 {
			continue
		}
		iv := dev.d2h.Reserve(ready, xferTime(bytesOf(dirty), dev.spec.BulkBW))
		dev.pagesWrittenBack += dirty
		a.dirtyOn[devIdx] = 0
		if iv.End > end {
			end = iv.End
		}
	}
	return end, nil
}

// Invalidate marks an allocation's device copies stale (the host copy was
// just overwritten, e.g. by a network receive): device pages are dropped
// without write-back.
func (n *Node) Invalidate(id AllocID) error {
	a, ok := n.allocs[id]
	if !ok {
		return fmt.Errorf("gpusim: invalidate of unknown allocation %d", id)
	}
	for devIdx, dev := range n.devices {
		dev.residentPages -= a.residentOn[devIdx]
		a.residentOn[devIdx] = 0
		a.dirtyOn[devIdx] = 0
	}
	a.checkInvariants()
	return nil
}

// PredictStall estimates the serialized migration stall a kernel whose
// arguments total working bytes, with the given dominant access pattern,
// would pay if launched on this node after add more bytes were allocated
// here. This is the predicted-fault-rate cost term consumed by
// fault-aware placement: transfer time prices getting the data to a
// node; this prices what UVM oversubscription does to the kernel once it
// is there. The prediction mirrors Launch's regime model — including the
// installed prefetch policy's threshold shift and overlap — so a node
// whose prefetcher tolerates deep oversubscription predicts cheaper than
// one on pure demand paging.
func (n *Node) PredictStall(add, working memmodel.Bytes, pattern memmodel.Pattern) sim.VirtualTime {
	if working <= 0 || len(n.devices) == 0 {
		return 0
	}
	total := n.spec.TotalDeviceMemory()
	if total <= 0 {
		return 0
	}
	d := n.devices[0]
	capacity := d.CapacityPages()
	if capacity <= 0 {
		return 0
	}
	wp := working.Pages()
	// Mirror Launch's pressure rule: the kernel's own working set over
	// one device's capacity, escalated to the node-level allocation
	// factor once the working set is substantial.
	pressure := float64(wp) / float64(capacity)
	if wp*4 >= capacity {
		if ap := float64(n.allocated+add) / float64(total); ap > pressure {
			pressure = ap
		}
	}
	dec := n.prefetch.Decide(PlanView{
		Pattern:  pattern,
		Mode:     memmodel.Read,
		Fraction: 1,
		Passes:   1,
		Touched:  wp,
		Pressure: pressure,
	}).normalize()
	threshold := collapseThreshold(pattern) * dec.ThresholdScale
	eff := batchEfficiency(pattern)
	switch {
	case pressure <= residentTolerance:
		// Fits: first-touch migration coalesces at bulk rate and is
		// already priced as transfer time by the placement layer.
		return 0
	case pressure <= threshold:
		// Streaming: the demand-faulted share of the working set stalls
		// the fault engine; the prefetched share overlaps compute.
		stall := xferTime(working, d.spec.FaultBW*eff)
		return sim.VirtualTime((1 - dec.BulkFraction) * float64(stall))
	default:
		// Storm: the full working set re-migrates at collapsed bandwidth,
		// super-linearly worse with pressure.
		penalty := 1.0
		if threshold > 0 && pressure > threshold {
			penalty = pressure / threshold
		}
		return xferTime(working, d.spec.StormBW*stormEfficiency(pattern)/penalty)
	}
}

// CheckInvariants verifies global page accounting; tests call it after
// mutation sequences.
func (n *Node) CheckInvariants() error {
	perDev := make([]int64, len(n.devices))
	for _, a := range n.allocs {
		a.checkInvariants()
		for d, r := range a.residentOn {
			perDev[d] += r
		}
	}
	for i, d := range n.devices {
		if perDev[i] != d.residentPages {
			return fmt.Errorf("gpusim: device %d resident mismatch: sum %d, counter %d",
				i, perDev[i], d.residentPages)
		}
		if d.residentPages > d.CapacityPages() {
			return fmt.Errorf("gpusim: device %d over capacity: %d > %d",
				i, d.residentPages, d.CapacityPages())
		}
		if d.residentPages < 0 {
			return fmt.Errorf("gpusim: device %d negative residency %d", i, d.residentPages)
		}
	}
	return nil
}
