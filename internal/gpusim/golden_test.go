package gpusim

import (
	"fmt"
	"testing"

	"grout/internal/memmodel"
)

// goldenRows holds the launch-by-launch results of the golden scenario as
// captured from the simulator BEFORE prefetch/eviction became pluggable.
// The baseline policies (eager prefetch + LRU eviction) must reproduce
// these bit-for-bit: policies move time, never semantics, and the default
// configuration must not move time either.
var goldenRows = []goldenRow{
	{"resident-seq-read", 0, 357932426, 18485, 357913941, 4294967296, 0, "resident"},
	{"resident-rerun-rw", 357932426, 357950911, 18485, 0, 0, 0, "resident"},
	{"resident-readmostly", 357950911, 1252754249, 18485, 894784853, 6442450944, 0, "resident"},
	{"streaming-seq-rw2", 1252754249, 12706018856, 18485, 11453246122, 25769803776, 8589934592, "streaming"},
	{"streaming-strided", 12706018856, 14751259862, 18485, 2045222521, 4294967296, 0, "streaming"},
	{"storm-random-rw", 14751259862, 1524700718347, 18485, 1509949440000, 64424509440, 32212254720, "storm"},
	{"storm-seq-read2", 1524700718347, 20883026890678, 18485, 19358326153846, 128849018880, 0, "storm"},
	{"peer-pull-gpu1", 20883026890678, 21361607750188, 18485, 478580841025, 4294967296, 0, "storm"},
	{"mixed-pressure", 21361607750188, 24059983287757, 18485, 2698375519084, 25769803776, 2147483648, "storm"},
	{"post-hosttouch", 24059983287757, 25017144988293, 18485, 957161682051, 21474836480, 10737418240, "storm"},
	{"stats-gpu0", 87723, 19797, 19797, 9, 9216, 0, "stats"},
	{"stats-gpu1", 2048, 0, 0, 1, 683, 0, "stats"},
}

// TestGoldenBitCompatible locks the baseline simulator arithmetic: the
// default node and an explicitly configured eager+lru node must both
// reproduce the pre-refactor capture exactly.
func TestGoldenBitCompatible(t *testing.T) {
	cases := []struct {
		name      string
		configure func(*Node)
	}{
		{"default-policies", nil},
		{"explicit-eager-lru", func(n *Node) {
			if err := n.UseMemoryPolicies("eager", "lru"); err != nil {
				t.Fatalf("UseMemoryPolicies: %v", err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := runGoldenScenario(tc.configure)
			if len(got) != len(goldenRows) {
				t.Fatalf("got %d rows, want %d", len(got), len(goldenRows))
			}
			for i, want := range goldenRows {
				if got[i] != want {
					t.Errorf("row %d (%s):\n got  %+v\n want %+v", i, want.label, got[i], want)
				}
			}
		})
	}
}

type goldenRow struct {
	label                        string
	start, end, compute, memTime int64
	migrated, evicted            int64
	regime                       string
}

// runGoldenScenario drives a fixed launch sequence through every regime,
// advise mode and miss path of the simulator and records each result.
func runGoldenScenario(configure func(*Node)) []goldenRow {
	var rows []goldenRow
	rec := func(label string, res LaunchResult) {
		rows = append(rows, goldenRow{
			label:    label,
			start:    int64(res.Interval.Start),
			end:      int64(res.Interval.End),
			compute:  int64(res.Compute),
			memTime:  int64(res.MemTime),
			migrated: int64(res.BytesMigrated),
			evicted:  int64(res.BytesEvicted),
			regime:   res.Regime.String(),
		})
	}

	spec := NodeSpec{
		Name:       "golden",
		Devices:    []DeviceSpec{V100Spec("golden/gpu0"), V100Spec("golden/gpu1")},
		HostMemory: 180 * memmodel.GiB,
	}
	n := NewNode(spec)
	if configure != nil {
		configure(n)
	}

	small, _ := n.Alloc(4 * memmodel.GiB)  // resident working set
	big, _ := n.Alloc(20 * memmodel.GiB)   // streaming on one 16 GiB GPU
	pinned, _ := n.Alloc(2 * memmodel.GiB) // preferred-location ballast
	rom, _ := n.Alloc(3 * memmodel.GiB)    // read-mostly operand

	n.SetAdvise(pinned, AdvisePreferredLocation, 0)
	n.SetAdvise(rom, AdviseReadMostly, 0)

	kc := KernelCost{Name: "k", Elements: 1 << 20, OpsPerElement: 4}
	acc := func(m memmodel.AccessMode, p memmodel.Pattern, passes int) memmodel.Access {
		return memmodel.Access{Mode: m, Pattern: p, Fraction: 1, Passes: passes}
	}

	// Warm the pinned ballast onto device 0.
	n.Prefetch(pinned, 0, 0)

	// 1. Resident sequential read of the small array.
	res, _ := n.Launch(0, 0, kc, []ArgBinding{
		{Alloc: small, Access: acc(memmodel.Read, memmodel.Sequential, 1)},
	}, 0)
	rec("resident-seq-read", res)

	// 2. Resident re-run: everything hits.
	res, _ = n.Launch(0, 0, kc, []ArgBinding{
		{Alloc: small, Access: acc(memmodel.ReadWrite, memmodel.Sequential, 1)},
	}, res.Interval.End)
	rec("resident-rerun-rw", res)

	// 3. Read-mostly operand alongside the small array.
	res, _ = n.Launch(0, 0, kc, []ArgBinding{
		{Alloc: small, Access: acc(memmodel.Read, memmodel.Strided, 1)},
		{Alloc: rom, Access: acc(memmodel.Read, memmodel.Broadcast, 2)},
	}, res.Interval.End)
	rec("resident-readmostly", res)

	// 4. Streaming: the big array oversubscribes one GPU, two passes.
	res, _ = n.Launch(0, 0, kc, []ArgBinding{
		{Alloc: big, Access: acc(memmodel.ReadWrite, memmodel.Sequential, 2)},
	}, res.Interval.End)
	rec("streaming-seq-rw2", res)

	// 5. Streaming strided read.
	res, _ = n.Launch(0, 0, kc, []ArgBinding{
		{Alloc: big, Access: acc(memmodel.Read, memmodel.Strided, 1)},
	}, res.Interval.End)
	rec("streaming-strided", res)

	// 6. Storm: allocate the pressure driver, then a huge random launch.
	huge, _ := n.Alloc(60 * memmodel.GiB)
	res, _ = n.Launch(0, 0, kc, []ArgBinding{
		{Alloc: huge, Access: acc(memmodel.ReadWrite, memmodel.Random, 1)},
	}, res.Interval.End)
	rec("storm-random-rw", res)

	// 7. Storm sequential sweep over the huge array, two passes.
	res, _ = n.Launch(0, 0, kc, []ArgBinding{
		{Alloc: huge, Access: acc(memmodel.Read, memmodel.Sequential, 2)},
	}, res.Interval.End)
	rec("storm-seq-read2", res)

	// 8. Peer path: small array now lives on gpu0; launch on gpu1.
	res, _ = n.Launch(1, 0, kc, []ArgBinding{
		{Alloc: small, Access: acc(memmodel.Read, memmodel.Sequential, 1)},
	}, res.Interval.End)
	rec("peer-pull-gpu1", res)

	// 9. Mixed-pattern launch under pressure back on gpu0.
	res, _ = n.Launch(0, 0, kc, []ArgBinding{
		{Alloc: big, Access: acc(memmodel.Read, memmodel.Sequential, 1)},
		{Alloc: small, Access: acc(memmodel.Write, memmodel.Random, 1)},
	}, res.Interval.End)
	rec("mixed-pressure", res)

	// 10. Host touch of the big array, then a relaunch that refaults.
	n.HostTouch(big, memmodel.ReadWrite, 0.5, res.Interval.End)
	res, _ = n.Launch(0, 0, kc, []ArgBinding{
		{Alloc: big, Access: acc(memmodel.ReadWrite, memmodel.Broadcast, 1)},
	}, res.Interval.End)
	rec("post-hosttouch", res)

	// Final stats rows: encode device counters as pseudo-results.
	for i, d := range n.Devices() {
		st := d.Stats()
		rows = append(rows, goldenRow{
			label:    fmt.Sprintf("stats-gpu%d", i),
			start:    st.PagesMigratedIn,
			end:      st.PagesEvicted,
			compute:  st.PagesWrittenBack,
			memTime:  st.KernelsRun,
			migrated: st.ResidentPages,
			evicted:  0,
			regime:   "stats",
		})
	}
	return rows
}
