package gpusim

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"grout/internal/memmodel"
	"grout/internal/sim"
)

// testNode returns a 2×V100 node like the paper's OCI worker.
func testNode(t testing.TB) *Node {
	t.Helper()
	return NewNode(OCIWorkerSpec("w0"))
}

func seqRead(frac float64) memmodel.Access {
	return memmodel.Access{Mode: memmodel.Read, Pattern: memmodel.Sequential, Fraction: frac, Passes: 1}
}

func TestAllocFree(t *testing.T) {
	n := testNode(t)
	id, err := n.Alloc(4 * memmodel.GiB)
	if err != nil {
		t.Fatal(err)
	}
	if sz, err := n.AllocSize(id); err != nil || sz != 4*memmodel.GiB {
		t.Fatalf("AllocSize = %v, %v", sz, err)
	}
	if n.AllocatedBytes() != 4*memmodel.GiB {
		t.Fatalf("allocated = %v", n.AllocatedBytes())
	}
	if err := n.Free(id); err != nil {
		t.Fatal(err)
	}
	if n.AllocatedBytes() != 0 {
		t.Fatalf("allocated after free = %v", n.AllocatedBytes())
	}
	if err := n.Free(id); err == nil {
		t.Fatalf("double free succeeded")
	}
}

func TestAllocRejectsBadSizes(t *testing.T) {
	n := testNode(t)
	if _, err := n.Alloc(0); err == nil {
		t.Fatalf("zero-size alloc succeeded")
	}
	if _, err := n.Alloc(-memmodel.GiB); err == nil {
		t.Fatalf("negative alloc succeeded")
	}
}

func TestAllocHostMemoryExhaustion(t *testing.T) {
	n := testNode(t) // 180 GiB host memory
	if _, err := n.Alloc(100 * memmodel.GiB); err != nil {
		t.Fatal(err)
	}
	_, err := n.Alloc(100 * memmodel.GiB)
	if !errors.Is(err, ErrHostMemoryExhausted) {
		t.Fatalf("expected host exhaustion, got %v", err)
	}
}

func TestAllocWithID(t *testing.T) {
	n := testNode(t)
	if err := n.AllocWithID(42, memmodel.GiB); err != nil {
		t.Fatal(err)
	}
	if err := n.AllocWithID(42, memmodel.GiB); err == nil {
		t.Fatalf("duplicate AllocWithID succeeded")
	}
	// Subsequent automatic IDs must not collide.
	id, err := n.Alloc(memmodel.GiB)
	if err != nil {
		t.Fatal(err)
	}
	if id == 42 {
		t.Fatalf("Alloc reused explicit ID")
	}
}

func TestLaunchUnknownAlloc(t *testing.T) {
	n := testNode(t)
	_, err := n.Launch(0, 0, KernelCost{Name: "k"},
		[]ArgBinding{{Alloc: 999, Access: seqRead(1)}}, 0)
	if err == nil {
		t.Fatalf("launch with unknown alloc succeeded")
	}
}

func TestLaunchResidentRegime(t *testing.T) {
	n := testNode(t)
	id, _ := n.Alloc(4 * memmodel.GiB) // fits 16 GiB device easily
	res, err := n.Launch(0, 0, KernelCost{Name: "k", Elements: 1 << 20, OpsPerElement: 1},
		[]ArgBinding{{Alloc: id, Access: seqRead(1)}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regime != Resident {
		t.Fatalf("regime = %v, want resident", res.Regime)
	}
	// First touch migrates everything.
	if res.BytesMigrated != 4*memmodel.GiB {
		t.Fatalf("migrated = %v, want 4GiB", res.BytesMigrated)
	}
	// Second launch: all pages resident, no migration.
	res2, err := n.Launch(0, 0, KernelCost{Name: "k", Elements: 1 << 20, OpsPerElement: 1},
		[]ArgBinding{{Alloc: id, Access: seqRead(1)}}, res.Interval.End)
	if err != nil {
		t.Fatal(err)
	}
	if res2.BytesMigrated != 0 {
		t.Fatalf("second launch migrated %v, want 0", res2.BytesMigrated)
	}
	if res2.Interval.End <= res2.Interval.Start {
		t.Fatalf("second launch has empty interval")
	}
	if res2.Interval.Length() >= res.Interval.Length() {
		t.Fatalf("warm launch (%v) not faster than cold (%v)",
			res2.Interval.Length(), res.Interval.Length())
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLaunchStreamingRegime(t *testing.T) {
	n := testNode(t)
	id, _ := n.Alloc(24 * memmodel.GiB) // 1.5x one device: oversubscribed, below seq collapse
	res, err := n.Launch(0, 0, KernelCost{Name: "k"},
		[]ArgBinding{{Alloc: id, Access: seqRead(1)}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regime != Streaming {
		t.Fatalf("regime = %v (pressure %.2f), want streaming", res.Regime, res.Pressure)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := n.Device(0).ResidentPages(); got > n.Device(0).CapacityPages() {
		t.Fatalf("device over capacity: %d", got)
	}
}

func TestLaunchStormRegime(t *testing.T) {
	n := testNode(t)
	id, _ := n.Alloc(48 * memmodel.GiB) // 3x one device: past sequential collapse (2.6)
	res, err := n.Launch(0, 0, KernelCost{Name: "k"},
		[]ArgBinding{{Alloc: id, Access: seqRead(1)}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regime != Storm {
		t.Fatalf("regime = %v (pressure %.2f), want storm", res.Regime, res.Pressure)
	}
}

func TestRandomPatternCollapsesImmediately(t *testing.T) {
	n := testNode(t)
	id, _ := n.Alloc(18 * memmodel.GiB) // barely oversubscribed (1.125x)
	acc := memmodel.Access{Mode: memmodel.Read, Pattern: memmodel.Random, Fraction: 1, Passes: 1}
	res, err := n.Launch(0, 0, KernelCost{Name: "k"}, []ArgBinding{{Alloc: id, Access: acc}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regime != Storm {
		t.Fatalf("random oversubscribed regime = %v, want storm", res.Regime)
	}
}

// The headline UVM behaviour: crossing the collapse threshold must cost
// orders of magnitude, not a constant factor (paper Fig. 1 / Fig. 6a).
func TestOversubscriptionCliff(t *testing.T) {
	times := map[memmodel.Bytes]sim.VirtualTime{}
	for _, size := range []memmodel.Bytes{8 * memmodel.GiB, 32 * memmodel.GiB, 48 * memmodel.GiB} {
		n := testNode(t)
		id, err := n.Alloc(size)
		if err != nil {
			t.Fatal(err)
		}
		res, err := n.Launch(0, 0,
			KernelCost{Name: "sweep", Elements: int64(size / 4), OpsPerElement: 1},
			[]ArgBinding{{Alloc: id, Access: seqRead(1)}}, 0)
		if err != nil {
			t.Fatal(err)
		}
		times[size] = res.Interval.Length()
	}
	// 8 -> 32 GiB (4x data, crossing into streaming): below ~20x.
	ratioModerate := float64(times[32*memmodel.GiB]) / float64(times[8*memmodel.GiB])
	if ratioModerate > 20 {
		t.Fatalf("moderate oversubscription ratio = %.1f, want < 20", ratioModerate)
	}
	// 32 -> 48 GiB (1.5x data, crossing into storm): must exceed 20x.
	ratioCliff := float64(times[48*memmodel.GiB]) / float64(times[32*memmodel.GiB])
	if ratioCliff < 20 {
		t.Fatalf("storm cliff ratio = %.1f, want > 20 (times: %v)", ratioCliff, times)
	}
}

func TestMultiPassStreamingChargesOverflow(t *testing.T) {
	n := testNode(t)
	id, _ := n.Alloc(24 * memmodel.GiB)
	one := memmodel.Access{Mode: memmodel.Read, Pattern: memmodel.Sequential, Fraction: 1, Passes: 1}
	five := one
	five.Passes = 5
	r1, err := n.Launch(0, 0, KernelCost{Name: "k"}, []ArgBinding{{Alloc: id, Access: one}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	n2 := testNode(t)
	id2, _ := n2.Alloc(24 * memmodel.GiB)
	r5, err := n2.Launch(0, 0, KernelCost{Name: "k"}, []ArgBinding{{Alloc: id2, Access: five}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r5.BytesMigrated <= r1.BytesMigrated {
		t.Fatalf("multi-pass migrated %v, single pass %v: want more", r5.BytesMigrated, r1.BytesMigrated)
	}
}

func TestWriteAccessCausesWriteBackTraffic(t *testing.T) {
	n := testNode(t)
	id, _ := n.Alloc(48 * memmodel.GiB)
	rd := memmodel.Access{Mode: memmodel.Read, Pattern: memmodel.Sequential, Fraction: 1, Passes: 1}
	wr := rd
	wr.Mode = memmodel.ReadWrite
	rRes, _ := n.Launch(0, 0, KernelCost{}, []ArgBinding{{Alloc: id, Access: rd}}, 0)
	n2 := testNode(t)
	id2, _ := n2.Alloc(48 * memmodel.GiB)
	wRes, _ := n2.Launch(0, 0, KernelCost{}, []ArgBinding{{Alloc: id2, Access: wr}}, 0)
	if wRes.BytesEvicted <= rRes.BytesEvicted {
		t.Fatalf("write evicted %v, read evicted %v: want more", wRes.BytesEvicted, rRes.BytesEvicted)
	}
	if wRes.MemTime <= rRes.MemTime {
		t.Fatalf("write mem time %v not above read %v", wRes.MemTime, rRes.MemTime)
	}
}

func TestPeerMigration(t *testing.T) {
	n := testNode(t)
	id, _ := n.Alloc(8 * memmodel.GiB)
	// Warm device 0.
	if _, err := n.Launch(0, 0, KernelCost{}, []ArgBinding{{Alloc: id, Access: seqRead(1)}}, 0); err != nil {
		t.Fatal(err)
	}
	if n.ResidentPagesOf(id, 0) == 0 {
		t.Fatalf("pages not resident on dev0 after launch")
	}
	// Launch on device 1: pages must migrate from the peer.
	res, err := n.Launch(1, 0, KernelCost{}, []ArgBinding{{Alloc: id, Access: seqRead(1)}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesMigrated != 8*memmodel.GiB {
		t.Fatalf("peer launch migrated %v, want 8GiB", res.BytesMigrated)
	}
	if n.ResidentPagesOf(id, 0) != 0 || n.ResidentPagesOf(id, 1) == 0 {
		t.Fatalf("peer migration did not move residency: dev0=%d dev1=%d",
			n.ResidentPagesOf(id, 0), n.ResidentPagesOf(id, 1))
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionOfBystanders(t *testing.T) {
	n := testNode(t)
	a, _ := n.Alloc(10 * memmodel.GiB)
	b, _ := n.Alloc(10 * memmodel.GiB)
	if _, err := n.Launch(0, 0, KernelCost{}, []ArgBinding{{Alloc: a, Access: seqRead(1)}}, 0); err != nil {
		t.Fatal(err)
	}
	// b needs 10 GiB on a 16 GiB device: a must shrink.
	if _, err := n.Launch(0, 0, KernelCost{}, []ArgBinding{{Alloc: b, Access: seqRead(1)}}, 0); err != nil {
		t.Fatal(err)
	}
	if got := n.Device(0).ResidentPages(); got > n.Device(0).CapacityPages() {
		t.Fatalf("over capacity after eviction: %d", got)
	}
	if n.ResidentPagesOf(id0(b), 0) == 0 {
		t.Fatalf("b not resident after its own launch")
	}
	if n.Device(0).Stats().PagesEvicted == 0 {
		t.Fatalf("no eviction recorded")
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func id0(id AllocID) AllocID { return id }

func TestHostTouchPullsPagesHome(t *testing.T) {
	n := testNode(t)
	id, _ := n.Alloc(4 * memmodel.GiB)
	wr := memmodel.Access{Mode: memmodel.Write, Pattern: memmodel.Sequential, Fraction: 1, Passes: 1}
	res, _ := n.Launch(0, 0, KernelCost{}, []ArgBinding{{Alloc: id, Access: wr}}, 0)
	iv, err := n.HostTouch(id, memmodel.Read, 1, res.Interval.End)
	if err != nil {
		t.Fatal(err)
	}
	if iv.End <= res.Interval.End {
		t.Fatalf("host touch of dirty pages took no time")
	}
	if n.ResidentPagesOf(id, 0) != 0 {
		t.Fatalf("pages still on device after full host touch")
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHostTouchOfHostResidentIsFree(t *testing.T) {
	n := testNode(t)
	id, _ := n.Alloc(4 * memmodel.GiB)
	iv, err := n.HostTouch(id, memmodel.Write, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Start != 100 || iv.End != 100 {
		t.Fatalf("host-resident touch interval = %v, want empty at 100", iv)
	}
}

func TestPrefetchAndPreferredLocationOverlap(t *testing.T) {
	// With advise+prefetch, kernel time should be max(compute, mem)
	// rather than compute+mem.
	nCold := testNode(t)
	idCold, _ := nCold.Alloc(8 * memmodel.GiB)
	cold, _ := nCold.Launch(0, 0, KernelCost{Name: "k", Elements: 1 << 28, OpsPerElement: 4},
		[]ArgBinding{{Alloc: idCold, Access: seqRead(1)}}, 0)

	nHint := testNode(t)
	idHint, _ := nHint.Alloc(8 * memmodel.GiB)
	if err := nHint.SetAdvise(idHint, AdvisePreferredLocation, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := nHint.Prefetch(idHint, 0, 0); err != nil {
		t.Fatal(err)
	}
	hinted, _ := nHint.Launch(0, 0, KernelCost{Name: "k", Elements: 1 << 28, OpsPerElement: 4},
		[]ArgBinding{{Alloc: idHint, Access: seqRead(1)}}, 0)
	if hinted.Interval.Length() >= cold.Interval.Length() {
		t.Fatalf("hinted launch (%v) not faster than cold (%v)",
			hinted.Interval.Length(), cold.Interval.Length())
	}
	if hinted.BytesMigrated != 0 {
		t.Fatalf("hinted launch migrated %v, want 0 (prefetched)", hinted.BytesMigrated)
	}
}

func TestPrefetchRespectsCapacity(t *testing.T) {
	n := testNode(t)
	id, _ := n.Alloc(40 * memmodel.GiB)
	if _, err := n.Prefetch(id, 0, 0); err != nil {
		t.Fatal(err)
	}
	if got, cap := n.Device(0).ResidentPages(), n.Device(0).CapacityPages(); got > cap {
		t.Fatalf("prefetch overfilled device: %d > %d", got, cap)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadMostlyAdviseAvoidsStorm(t *testing.T) {
	// A broadcast array under AdviseReadMostly streams at bulk rate even
	// when oversubscribed, instead of ping-ponging.
	plain := testNode(t)
	idP, _ := plain.Alloc(24 * memmodel.GiB)
	accB := memmodel.Access{Mode: memmodel.Read, Pattern: memmodel.Broadcast, Fraction: 1, Passes: 1}
	resPlain, _ := plain.Launch(0, 0, KernelCost{}, []ArgBinding{{Alloc: idP, Access: accB}}, 0)

	hinted := testNode(t)
	idH, _ := hinted.Alloc(24 * memmodel.GiB)
	if err := hinted.SetAdvise(idH, AdviseReadMostly, 0); err != nil {
		t.Fatal(err)
	}
	resHint, _ := hinted.Launch(0, 0, KernelCost{}, []ArgBinding{{Alloc: idH, Access: accB}}, 0)
	if resHint.Interval.Length() >= resPlain.Interval.Length() {
		t.Fatalf("read-mostly (%v) not faster than plain (%v)",
			resHint.Interval.Length(), resPlain.Interval.Length())
	}
}

func TestFlushForSendAndInvalidate(t *testing.T) {
	n := testNode(t)
	id, _ := n.Alloc(4 * memmodel.GiB)
	wr := memmodel.Access{Mode: memmodel.Write, Pattern: memmodel.Sequential, Fraction: 1, Passes: 1}
	res, _ := n.Launch(0, 0, KernelCost{}, []ArgBinding{{Alloc: id, Access: wr}}, 0)
	ready, err := n.FlushForSend(id, res.Interval.End)
	if err != nil {
		t.Fatal(err)
	}
	if ready <= res.Interval.End {
		t.Fatalf("flush of dirty pages was free")
	}
	// Pages stay cached after flush.
	if n.ResidentPagesOf(id, 0) == 0 {
		t.Fatalf("flush dropped residency")
	}
	// Second flush: nothing dirty, free.
	ready2, _ := n.FlushForSend(id, ready)
	if ready2 != ready {
		t.Fatalf("second flush not free: %v vs %v", ready2, ready)
	}
	if err := n.Invalidate(id); err != nil {
		t.Fatal(err)
	}
	if n.ResidentPagesOf(id, 0) != 0 {
		t.Fatalf("invalidate left pages resident")
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamsIndependence(t *testing.T) {
	n := testNode(t)
	d := n.Device(0)
	s1 := d.NewStream()
	if d.StreamCount() != 2 {
		t.Fatalf("stream count = %d", d.StreamCount())
	}
	a, _ := n.Alloc(memmodel.GiB)
	b, _ := n.Alloc(memmodel.GiB)
	r0, _ := n.Launch(0, 0, KernelCost{Elements: 1 << 28, OpsPerElement: 8}, []ArgBinding{{Alloc: a, Access: seqRead(1)}}, 0)
	r1, _ := n.Launch(0, s1, KernelCost{Elements: 1 << 28, OpsPerElement: 8}, []ArgBinding{{Alloc: b, Access: seqRead(1)}}, 0)
	// Independent streams start concurrently.
	if r1.Interval.Start != 0 {
		t.Fatalf("second stream start = %v, want 0", r1.Interval.Start)
	}
	if r0.Interval.Start != 0 {
		t.Fatalf("first stream start = %v, want 0", r0.Interval.Start)
	}
	// Same stream serializes.
	r2, _ := n.Launch(0, 0, KernelCost{Elements: 1 << 20, OpsPerElement: 1}, []ArgBinding{{Alloc: a, Access: seqRead(1)}}, 0)
	if r2.Interval.Start < r0.Interval.End {
		t.Fatalf("same-stream launch overlapped: %v < %v", r2.Interval.Start, r0.Interval.End)
	}
}

func TestDeviceFreeAtPicksLeastBusyStream(t *testing.T) {
	n := testNode(t)
	d := n.Device(0)
	d.NewStream()
	a, _ := n.Alloc(memmodel.GiB)
	if _, err := n.Launch(0, 0, KernelCost{Elements: 1 << 28, OpsPerElement: 8}, []ArgBinding{{Alloc: a, Access: seqRead(1)}}, 0); err != nil {
		t.Fatal(err)
	}
	free, idx := d.FreeAt()
	if idx != 1 || free != 0 {
		t.Fatalf("FreeAt = %v,%d, want 0,1", free, idx)
	}
}

func TestMergedDuplicateArgBindings(t *testing.T) {
	n := testNode(t)
	id, _ := n.Alloc(4 * memmodel.GiB)
	args := []ArgBinding{
		{Alloc: id, Access: memmodel.Access{Mode: memmodel.Read, Pattern: memmodel.Sequential, Fraction: 1, Passes: 1}},
		{Alloc: id, Access: memmodel.Access{Mode: memmodel.Write, Pattern: memmodel.Random, Fraction: 0.5, Passes: 2}},
	}
	res, err := n.Launch(0, 0, KernelCost{}, args, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Merged: counted once, not twice.
	if res.BytesMigrated > 4*memmodel.GiB {
		t.Fatalf("duplicate binding double-counted: migrated %v", res.BytesMigrated)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Property: any random sequence of launches, host touches and prefetches
// preserves page-accounting invariants.
func TestRandomOpsInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := testNode(t)
		var ids []AllocID
		for i := 0; i < 4; i++ {
			id, err := n.Alloc(memmodel.Bytes(rng.Int63n(20)+1) * memmodel.GiB)
			if err != nil {
				return false
			}
			ids = append(ids, id)
		}
		var now sim.VirtualTime
		for op := 0; op < 30; op++ {
			id := ids[rng.Intn(len(ids))]
			switch rng.Intn(4) {
			case 0, 1:
				acc := memmodel.Access{
					Mode:     memmodel.AccessMode(rng.Intn(3)),
					Pattern:  memmodel.Pattern(rng.Intn(4)),
					Fraction: rng.Float64(),
					Passes:   rng.Intn(3) + 1,
				}
				res, err := n.Launch(rng.Intn(2), 0, KernelCost{Elements: 1000, OpsPerElement: 1},
					[]ArgBinding{{Alloc: id, Access: acc}}, now)
				if err != nil {
					return false
				}
				now = res.Interval.End
			case 2:
				iv, err := n.HostTouch(id, memmodel.Read, rng.Float64(), now)
				if err != nil {
					return false
				}
				now = iv.End
			case 3:
				iv, err := n.Prefetch(id, rng.Intn(2), now)
				if err != nil {
					return false
				}
				now = iv.End
			}
			if err := n.CheckInvariants(); err != nil {
				t.Logf("invariant violated at op %d: %v", op, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeSpecTotals(t *testing.T) {
	spec := OCIWorkerSpec("w")
	if spec.TotalDeviceMemory() != 32*memmodel.GiB {
		t.Fatalf("total device memory = %v, want 32GiB", spec.TotalDeviceMemory())
	}
	if len(spec.Devices) != 2 {
		t.Fatalf("device count = %d", len(spec.Devices))
	}
}

func TestRegimeAndAdviseStrings(t *testing.T) {
	if Resident.String() != "resident" || Streaming.String() != "streaming" || Storm.String() != "storm" {
		t.Fatalf("regime strings wrong")
	}
	if AdviseNone.String() != "none" || AdvisePreferredLocation.String() != "preferred-location" ||
		AdviseReadMostly.String() != "read-mostly" {
		t.Fatalf("advise strings wrong")
	}
}

func TestCollapseThresholdOrdering(t *testing.T) {
	if !(collapseThreshold(memmodel.Sequential) > collapseThreshold(memmodel.Strided) &&
		collapseThreshold(memmodel.Strided) > collapseThreshold(memmodel.Broadcast) &&
		collapseThreshold(memmodel.Broadcast) > collapseThreshold(memmodel.Random)) {
		t.Fatalf("collapse thresholds not ordered")
	}
	if collapseThreshold(memmodel.Random) != 1.0 {
		t.Fatalf("random collapse threshold != 1.0")
	}
}
