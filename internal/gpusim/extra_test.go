package gpusim

import (
	"testing"

	"grout/internal/memmodel"
	"grout/internal/sim"
)

// TestAllocationPressureTriggersStorm: even when each kernel's own working
// set fits comfortably, a node-wide allocation far beyond device memory
// (the paper's oversubscription factor) pushes substantial kernels into
// the storm regime — the mechanism behind MV's Figure 6a collapse despite
// its small per-partition kernels.
func TestAllocationPressureTriggersStorm(t *testing.T) {
	n := testNode(t)
	// Allocate 96 GiB total (3x the node's 32 GiB) in 12 GiB chunks.
	var ids []AllocID
	for i := 0; i < 8; i++ {
		id, err := n.Alloc(12 * memmodel.GiB)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Each kernel touches only 12 GiB (< 16 GiB capacity), but the
	// allocation pressure is 3x.
	res, err := n.Launch(0, 0, KernelCost{}, []ArgBinding{{Alloc: ids[0], Access: seqRead(1)}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regime != Storm {
		t.Fatalf("regime = %v under 3x allocation pressure, want storm", res.Regime)
	}
}

// TestSmallHotKernelsExemptFromAllocationPressure: tiny working sets (the
// CG scalar plumbing) stay cached even on a thrashing node.
func TestSmallHotKernelsExemptFromAllocationPressure(t *testing.T) {
	n := testNode(t)
	for i := 0; i < 8; i++ {
		if _, err := n.Alloc(12 * memmodel.GiB); err != nil {
			t.Fatal(err)
		}
	}
	small, err := n.Alloc(4 * memmodel.KiB)
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Launch(0, 0, KernelCost{}, []ArgBinding{{Alloc: small, Access: seqRead(1)}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regime != Resident {
		t.Fatalf("tiny kernel regime = %v on a 3x node, want resident", res.Regime)
	}
}

// TestStormPenaltyGrowsWithPressure: Figure 1's super-linear tail — the
// same sweep gets slower per byte as the oversubscription factor rises.
func TestStormPenaltyGrowsWithPressure(t *testing.T) {
	perByte := func(total memmodel.Bytes) float64 {
		n := testNode(t)
		id, err := n.Alloc(total)
		if err != nil {
			t.Fatal(err)
		}
		res, err := n.Launch(0, 0, KernelCost{}, []ArgBinding{{Alloc: id, Access: seqRead(1)}}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Regime != Storm {
			t.Fatalf("size %v regime = %v, want storm", total, res.Regime)
		}
		return res.Interval.Length().Seconds() / float64(total)
	}
	at3x := perByte(96 * memmodel.GiB)
	at5x := perByte(160 * memmodel.GiB)
	if at5x <= at3x {
		t.Fatalf("per-byte storm cost did not grow: 3x %.3g vs 5x %.3g", at3x, at5x)
	}
}

func TestDeviceAccessorPanicsOnBadIndex(t *testing.T) {
	n := testNode(t)
	defer func() {
		if recover() == nil {
			t.Fatalf("Device(9) did not panic")
		}
	}()
	n.Device(9)
}

func TestStreamAccessorPanicsOnBadIndex(t *testing.T) {
	n := testNode(t)
	defer func() {
		if recover() == nil {
			t.Fatalf("Stream(9) did not panic")
		}
	}()
	n.Device(0).Stream(9)
}

func TestLaunchRespectsReadyTime(t *testing.T) {
	n := testNode(t)
	id, _ := n.Alloc(memmodel.GiB)
	res, err := n.Launch(0, 0, KernelCost{Elements: 1000, OpsPerElement: 1},
		[]ArgBinding{{Alloc: id, Access: seqRead(1)}}, sim.VirtualTime(5e9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Interval.Start < sim.VirtualTime(5e9) {
		t.Fatalf("launch started at %v before ready time", res.Interval.Start)
	}
}

func TestHostTouchPartialFraction(t *testing.T) {
	n := testNode(t)
	id, _ := n.Alloc(4 * memmodel.GiB)
	if _, err := n.Launch(0, 0, KernelCost{}, []ArgBinding{{Alloc: id, Access: seqRead(1)}}, 0); err != nil {
		t.Fatal(err)
	}
	before := n.ResidentPagesOf(id, 0)
	if _, err := n.HostTouch(id, memmodel.Read, 0.25, 0); err != nil {
		t.Fatal(err)
	}
	after := n.ResidentPagesOf(id, 0)
	pulled := before - after
	want := int64(float64(before) * 0.25)
	if pulled != want {
		t.Fatalf("partial host touch pulled %d pages, want %d", pulled, want)
	}
	// Invalid fractions normalize to a full touch.
	if _, err := n.HostTouch(id, memmodel.Read, -3, 0); err != nil {
		t.Fatal(err)
	}
	if n.ResidentPagesOf(id, 0) != 0 {
		t.Fatalf("normalized full touch left pages resident")
	}
}

func TestStatsCounters(t *testing.T) {
	n := testNode(t)
	id, _ := n.Alloc(20 * memmodel.GiB) // forces eviction churn on a 16 GiB device
	wr := memmodel.Access{Mode: memmodel.Write, Pattern: memmodel.Sequential, Fraction: 1, Passes: 1}
	if _, err := n.Launch(0, 0, KernelCost{}, []ArgBinding{{Alloc: id, Access: wr}}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.HostTouch(id, memmodel.Read, 1, 0); err != nil {
		t.Fatal(err)
	}
	st := n.Device(0).Stats()
	if st.KernelsRun != 1 {
		t.Fatalf("kernels = %d", st.KernelsRun)
	}
	if st.PagesMigratedIn == 0 {
		t.Fatalf("no migrations counted")
	}
	if st.PagesWrittenBack == 0 {
		t.Fatalf("no write-backs counted after dirty host touch")
	}
	if st.ResidentPages != 0 {
		t.Fatalf("resident pages after full host touch = %d", st.ResidentPages)
	}
}

func TestSetAdviseUnknownAlloc(t *testing.T) {
	n := testNode(t)
	if err := n.SetAdvise(99, AdviseReadMostly, 0); err == nil {
		t.Fatalf("advise on unknown alloc succeeded")
	}
	if _, err := n.Prefetch(99, 0, 0); err == nil {
		t.Fatalf("prefetch of unknown alloc succeeded")
	}
	if _, err := n.FlushForSend(99, 0); err == nil {
		t.Fatalf("flush of unknown alloc succeeded")
	}
	if err := n.Invalidate(99); err == nil {
		t.Fatalf("invalidate of unknown alloc succeeded")
	}
	if _, err := n.HostTouch(99, memmodel.Read, 1, 0); err == nil {
		t.Fatalf("host touch of unknown alloc succeeded")
	}
	if _, err := n.AllocSize(99); err == nil {
		t.Fatalf("size of unknown alloc succeeded")
	}
}

func TestAllocSizeReporting(t *testing.T) {
	n := testNode(t)
	id, _ := n.Alloc(3 * memmodel.GiB)
	sz, err := n.AllocSize(id)
	if err != nil || sz != 3*memmodel.GiB {
		t.Fatalf("AllocSize = %v, %v", sz, err)
	}
}
