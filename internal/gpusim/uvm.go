package gpusim

import (
	"errors"
	"fmt"

	"grout/internal/memmodel"
	"grout/internal/sim"
)

// ErrUnknownAdvise is returned (wrapped) by SetAdvise for values outside
// the defined Advise enum; hostile or stale wire input must not silently
// become AdviseNone.
var ErrUnknownAdvise = errors.New("gpusim: unknown advise value")

// ErrBadPreferredDevice is returned (wrapped) by SetAdvise when
// AdvisePreferredLocation names a device the node does not have.
var ErrBadPreferredDevice = errors.New("gpusim: bad preferred device")

// AllocID identifies a UVM allocation within a node. GrOUT's data registry
// keys global arrays by the same ID on every node that holds a replica.
type AllocID int64

// Advise mirrors cudaMemAdvise values relevant to the simulation.
type Advise int

const (
	// AdviseNone leaves placement to demand paging.
	AdviseNone Advise = iota
	// AdvisePreferredLocation pins pages to a device: the eviction engine
	// avoids evicting them and the prefetcher pulls them eagerly.
	AdvisePreferredLocation
	// AdviseReadMostly replicates read-only pages on access instead of
	// migrating them, defusing FALL-page ping-pong for broadcast data.
	AdviseReadMostly
)

// Valid reports whether a is a defined Advise value.
func (a Advise) Valid() bool {
	return a >= AdviseNone && a <= AdviseReadMostly
}

func (a Advise) String() string {
	switch a {
	case AdvisePreferredLocation:
		return "preferred-location"
	case AdviseReadMostly:
		return "read-mostly"
	default:
		return "none"
	}
}

// hostLocation marks pages resident in host memory.
const hostLocation = -1

// alloc tracks one UVM allocation's state on a node: how many of its pages
// sit on each device (the remainder implicitly on the host), dirty counts,
// and tuning hints.
type alloc struct {
	id    AllocID
	size  memmodel.Bytes
	pages int64
	// residentOn[d] is the number of this allocation's pages resident on
	// device d. Pages not on any device are on the host. Array-granular
	// accounting (counts, not bitmaps) keeps 160 GiB simulations cheap
	// while preserving capacity and traffic dynamics.
	residentOn []int64
	// dirtyOn[d] counts device-resident pages that must be written back
	// on eviction.
	dirtyOn []int64
	// lastUse[d] is the last virtual time a kernel on device d touched
	// the allocation; drives LRU victim selection.
	lastUse []sim.VirtualTime
	advise  Advise
	// preferred is the device index for AdvisePreferredLocation.
	preferred int
	// hist is the online fault/reuse history ring feeding adaptive
	// prefetch and eviction policies.
	hist AllocHistory
}

func newAlloc(id AllocID, size memmodel.Bytes, devices int) *alloc {
	return &alloc{
		id:         id,
		size:       size,
		pages:      size.Pages(),
		residentOn: make([]int64, devices),
		dirtyOn:    make([]int64, devices),
		lastUse:    make([]sim.VirtualTime, devices),
		preferred:  hostLocation,
	}
}

// hostPages reports how many pages currently reside on the host.
func (a *alloc) hostPages() int64 {
	n := a.pages
	for _, r := range a.residentOn {
		n -= r
	}
	return n
}

// residentBytes reports bytes resident on device d.
func (a *alloc) residentBytes(d int) memmodel.Bytes {
	return memmodel.Bytes(a.residentOn[d]) * memmodel.PageSize
}

// checkInvariants panics if page accounting went inconsistent; used by
// tests and cheap enough to run after every mutation in race of bugs.
func (a *alloc) checkInvariants() {
	var sum int64
	for d, r := range a.residentOn {
		if r < 0 {
			panic(fmt.Sprintf("gpusim: alloc %d negative residency on dev %d", a.id, d))
		}
		if a.dirtyOn[d] < 0 || a.dirtyOn[d] > r {
			panic(fmt.Sprintf("gpusim: alloc %d dirty %d exceeds resident %d on dev %d",
				a.id, a.dirtyOn[d], r, d))
		}
		sum += r
	}
	if sum > a.pages {
		panic(fmt.Sprintf("gpusim: alloc %d resident pages %d exceed allocation %d",
			a.id, sum, a.pages))
	}
}
