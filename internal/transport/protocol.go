// Package transport provides GrOUT's distributed deployment: real TCP
// sockets between the Controller and Worker processes. It implements
// core.Fabric, so the same Controller code that drives the in-process
// simulation drives genuine remote workers — array payloads are actually
// serialized and shipped, kernels execute their numeric implementations on
// the worker, and peer-to-peer transfers open direct worker-to-worker
// connections, as in the paper's architecture (Figure 3).
//
// Two wire protocols are supported (DESIGN.md §5.2):
//
//   - WireFramed (default): a length-prefixed binary protocol with
//     explicit little-endian encoding and a per-worker channel split — a
//     low-latency control channel for pings/launches/builds and a bulk
//     channel that streams array payloads in fixed-size chunks, multiple
//     transfers interleaved by request ID. A multi-GiB transfer no longer
//     head-of-line-blocks health probes or kernel launches.
//   - WireGob: the original reflection-driven gob codec over a single
//     mutex-serialized connection, kept for one release behind
//     `-wire gob`. Workers sniff the connection hello and serve both.
//
// In this mode time is wall-clock: the sim.VirtualTime values returned by
// fabric operations are nanoseconds since the fabric connected. The
// calibrated oversubscription model remains available through each
// worker's embedded simulator, but the timing authority for distributed
// runs is reality.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"grout/internal/core"
	"grout/internal/dag"
	"grout/internal/gpusim"
	"grout/internal/grcuda"
	"grout/internal/kernels"
)

// MsgKind enumerates protocol requests.
type MsgKind int

const (
	// MsgPing checks liveness.
	MsgPing MsgKind = iota
	// MsgEnsureArray mirrors array metadata on the worker.
	MsgEnsureArray
	// MsgReceiveArray delivers array contents to the worker.
	MsgReceiveArray
	// MsgFetchArray pulls array contents from the worker (flushing GPU
	// state first).
	MsgFetchArray
	// MsgLaunch executes a kernel CE.
	MsgLaunch
	// MsgBuildKernel compiles mini-CUDA source on the worker.
	MsgBuildKernel
	// MsgFreeArray drops an array replica.
	MsgFreeArray
	// MsgPushTo instructs the worker to send an array directly to a peer
	// worker (P2P).
	MsgPushTo
	// MsgStats returns the worker's execution statistics.
	MsgStats
	// MsgShutdown stops the worker server.
	MsgShutdown
)

var msgNames = [...]string{
	"ping", "ensure-array", "receive-array", "fetch-array", "launch",
	"build-kernel", "free-array", "push-to", "stats", "shutdown",
}

func (k MsgKind) String() string {
	if int(k) < len(msgNames) {
		return msgNames[k]
	}
	return fmt.Sprintf("MsgKind(%d)", int(k))
}

// Request is one controller->worker (or worker->worker) message.
type Request struct {
	Kind      MsgKind
	Meta      grcuda.ArrayMeta
	ArrayID   dag.ArrayID
	Data      *kernels.Buffer
	Inv       core.Invocation
	Src       string // kernel source for MsgBuildKernel
	Signature string
	PeerAddr  string // target address for MsgPushTo
}

// ErrCode classifies a remote failure so well-known error kinds survive
// the wire as core sentinel errors rather than opaque strings.
type ErrCode uint8

const (
	// CodeOK: no error.
	CodeOK ErrCode = iota
	// CodeGeneric: a failure with no sentinel mapping.
	CodeGeneric
	// CodeArrayNotFound maps to core.ErrArrayNotFound.
	CodeArrayNotFound
	// CodeKernelCompile maps to core.ErrKernelCompile.
	CodeKernelCompile
	// CodeOOM maps to core.ErrOOM.
	CodeOOM
	// CodeTimeout maps to core.ErrTimeout (e.g. a worker's P2P push hit
	// its peer deadline); the controller may retry it.
	CodeTimeout
	// CodeTransient maps to core.ErrTransient (e.g. a worker's P2P dial
	// was refused mid-restart); the controller may retry it.
	CodeTransient
	// CodeQuotaExceeded maps to core.ErrQuotaExceeded: the gateway
	// refused a tenant allocation over its array-byte quota.
	CodeQuotaExceeded
	// CodeShedded maps to core.ErrShedded: the gateway refused a launch
	// because the shard's admission backlog crossed the tenant class's
	// shed threshold. Retryable overload, not a sticky stream error.
	CodeShedded
)

// codeFor classifies an error for the wire.
func codeFor(err error) ErrCode {
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, core.ErrArrayNotFound):
		return CodeArrayNotFound
	case errors.Is(err, core.ErrKernelCompile):
		return CodeKernelCompile
	case errors.Is(err, core.ErrOOM), errors.Is(err, gpusim.ErrHostMemoryExhausted):
		return CodeOOM
	case errors.Is(err, core.ErrTimeout):
		return CodeTimeout
	case errors.Is(err, core.ErrTransient):
		return CodeTransient
	case errors.Is(err, core.ErrQuotaExceeded):
		return CodeQuotaExceeded
	case errors.Is(err, core.ErrShedded):
		return CodeShedded
	default:
		return CodeGeneric
	}
}

// sentinel maps a wire code back to the core sentinel, or nil.
func (c ErrCode) sentinel() error {
	switch c {
	case CodeArrayNotFound:
		return core.ErrArrayNotFound
	case CodeKernelCompile:
		return core.ErrKernelCompile
	case CodeOOM:
		return core.ErrOOM
	case CodeTimeout:
		return core.ErrTimeout
	case CodeTransient:
		return core.ErrTransient
	case CodeQuotaExceeded:
		return core.ErrQuotaExceeded
	case CodeShedded:
		return core.ErrShedded
	default:
		return nil
	}
}

// Response answers a Request.
type Response struct {
	Err     string
	Code    ErrCode // sentinel classification of Err
	Data    *kernels.Buffer
	Kernels int   // MsgStats: kernels executed
	Arrays  int   // MsgStats: arrays resident
	Elapsed int64 // MsgStats: worker-simulated busy nanoseconds
}

// setErr records err (with its wire code) on the response.
func (r *Response) setErr(err error) {
	if err == nil {
		return
	}
	r.Err = err.Error()
	r.Code = codeFor(err)
}

// ok reports whether the response carries no error; remote failures come
// back wrapped in their sentinel (errors.Is-able) when classified.
func (r *Response) ok() error {
	if r.Err == "" {
		return nil
	}
	if s := r.Code.sentinel(); s != nil {
		return fmt.Errorf("transport: remote error: %s (%w)", r.Err, s)
	}
	return fmt.Errorf("transport: remote error: %s", r.Err)
}

// --- legacy gob wire -------------------------------------------------------

// conn wraps a TCP connection with gob codecs: the legacy single-channel
// wire, kept behind WireGob for one release. mu serializes request/
// response round trips so the pipelined controller's per-worker dispatch
// goroutines can share connections (a move between two workers uses the
// source worker's conn, which that worker's own dispatcher may be using).
type conn struct {
	mu  sync.Mutex
	raw net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
	// timeout, when > 0, bounds one call's full round trip via a
	// connection deadline, so the legacy wire gets the same hung-worker
	// protection as the framed one.
	timeout time.Duration
}

func newConn(raw net.Conn) *conn {
	return &conn{raw: raw, enc: gob.NewEncoder(raw), dec: gob.NewDecoder(raw)}
}

// newConnReader builds a gob conn reading from r (the worker's sniffing
// buffered reader) and writing to raw.
func newConnReader(r io.Reader, raw net.Conn) *conn {
	return &conn{raw: raw, enc: gob.NewEncoder(raw), dec: gob.NewDecoder(r)}
}

func (c *conn) send(req *Request) error { return c.enc.Encode(req) }

func (c *conn) recv() (*Request, error) {
	var req Request
	if err := c.dec.Decode(&req); err != nil {
		return nil, err
	}
	return &req, nil
}

func (c *conn) reply(resp *Response) error { return c.enc.Encode(resp) }

func (c *conn) await() (*Response, error) {
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("transport: connection closed by peer")
		}
		return nil, err
	}
	return &resp, nil
}

func (c *conn) close() error { return c.raw.Close() }

// Close implements io.Closer (the worker's connection tracking).
func (c *conn) Close() error { return c.close() }

// call performs one request/response round trip. Round trips are atomic
// with respect to each other; concurrent callers queue on the connection.
func (c *conn) call(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.timeout > 0 {
		_ = c.raw.SetDeadline(time.Now().Add(c.timeout))
		defer func() { _ = c.raw.SetDeadline(time.Time{}) }()
	}
	if err := c.send(req); err != nil {
		return nil, fmt.Errorf("transport: send %v: %w", req.Kind, wrapNetErr(err))
	}
	resp, err := c.await()
	if err != nil {
		return nil, fmt.Errorf("transport: await %v: %w", req.Kind, wrapNetErr(err))
	}
	if err := resp.ok(); err != nil {
		return nil, err
	}
	return resp, nil
}

// --- framed control channel ------------------------------------------------

// ctrlConn is the framed control channel: strict request/response round
// trips for the small, latency-sensitive messages (ping, launch, build,
// ensure, free, stats, shutdown). Round trips serialize on mu — they are
// all sub-millisecond, and bulk payloads never travel here.
type ctrlConn struct {
	mu  sync.Mutex
	fc  *framedConn
	seq uint64
	// timeout, when > 0, bounds one round trip: armed as a read deadline
	// before the await (writes carry the framedConn's own write
	// deadline), cleared afterwards.
	timeout time.Duration
}

func newCtrlConn(fc *framedConn) *ctrlConn { return &ctrlConn{fc: fc} }

func (c *ctrlConn) close() error { return c.fc.close() }

// call performs one control round trip.
func (c *ctrlConn) call(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	id := c.seq
	if err := c.fc.sendRequest(id, req); err != nil {
		return nil, fmt.Errorf("transport: send %v: %w", req.Kind, err)
	}
	if c.timeout > 0 {
		c.fc.armRead(c.timeout)
		defer c.fc.armRead(0)
	}
	h, err := c.fc.readHeader()
	if err != nil {
		return nil, c.fc.fail(fmt.Errorf("transport: await %v: %w", req.Kind, wrapNetErr(err)))
	}
	if h.ftype != frameResponse || h.reqID != id {
		// A control channel carries nothing else; anything different
		// marks a corrupt stream.
		return nil, c.fc.fail(fmt.Errorf("transport: await %v: unexpected frame type %d id %d",
			req.Kind, h.ftype, h.reqID))
	}
	bp, err := c.fc.readPayload(h.n)
	if err != nil {
		return nil, c.fc.fail(fmt.Errorf("transport: await %v: %w", req.Kind, wrapNetErr(err)))
	}
	resp, perr := parseResponse(*bp)
	putFrameBuf(bp)
	if perr != nil {
		return nil, c.fc.fail(fmt.Errorf("transport: await %v: %w", req.Kind, perr))
	}
	if err := resp.ok(); err != nil {
		return nil, err
	}
	return resp, nil
}

// --- framed bulk channel ---------------------------------------------------

// bulkResult resolves one bulk operation.
type bulkResult struct {
	resp *Response
	err  error
}

// bulkPending is one in-flight bulk operation awaiting its response; dst,
// when non-nil, receives incoming chunk payloads directly (zero copy into
// the buffer's storage).
//
// Pendings are pooled. The invariant that makes recycling safe: every
// registered pending is sent exactly one result — by the demux loop
// (which removes it from the map before sending) or by failAll (which
// fires whenever the connection dies) — and the operation consumes that
// one result before release. The channel is therefore always empty when a
// pending returns to the pool.
type bulkPending struct {
	dst  *kernels.Buffer
	done chan bulkResult
}

var bulkPendingPool = sync.Pool{
	New: func() any { return &bulkPending{done: make(chan bulkResult, 1)} },
}

// responsePool recycles the bulk read loop's decoded Responses — the last
// per-operation allocation on the bulk path. Ownership: the demux hands a
// pooled response to exactly one pending; the consumer returns it via
// putResponse after extracting the outcome (failAll sends resp == nil, so
// consumers guard for that).
var responsePool = sync.Pool{New: func() any { return &Response{} }}

func getResponse() *Response { return responsePool.Get().(*Response) }

func putResponse(r *Response) {
	if r == nil {
		return
	}
	*r = Response{}
	responsePool.Put(r)
}

// consume extracts a bulk result's outcome and recycles its response.
func (res bulkResult) consume() error {
	if res.err != nil {
		putResponse(res.resp)
		return res.err
	}
	err := res.resp.ok()
	putResponse(res.resp)
	return err
}

// bulkClient multiplexes concurrent bulk operations (array sends, fetches
// and P2P push commands) over one framed channel. Writers interleave
// chunk frames under the connection's write mutex; a reader goroutine
// demultiplexes responses and incoming chunks by request ID.
type bulkClient struct {
	fc    *framedConn
	chunk int
	// chunkTimeout, when > 0, is the *progress* deadline for incoming
	// data: while at least one pending has a destination buffer (a fetch
	// expecting chunk frames), each read must complete within the window.
	// It is never armed otherwise — a pushTo legitimately produces no
	// frames for as long as the peer-to-peer transfer runs, and must not
	// be mistaken for a hang.
	chunkTimeout time.Duration

	mu      sync.Mutex
	seq     uint64
	pending map[uint64]*bulkPending
	// fetchers counts pendings with a destination buffer; the read
	// deadline is armed exactly while it is nonzero.
	fetchers int
	dead     error
}

func newBulkClient(fc *framedConn, chunk int) *bulkClient {
	b := &bulkClient{fc: fc, chunk: normalizeChunk(chunk), pending: make(map[uint64]*bulkPending)}
	go b.readLoop()
	return b
}

// rearm points the read deadline at the current fetcher population:
// armed while any fetch awaits chunks, cleared otherwise. Called with
// b.mu held whenever fetchers changes, and by the read loop after every
// frame (each arrival restarts the progress window).
func (b *bulkClient) rearm() {
	if b.chunkTimeout <= 0 {
		return
	}
	if b.fetchers > 0 {
		b.fc.armRead(b.chunkTimeout)
	} else {
		b.fc.armRead(0)
	}
}

func (b *bulkClient) close() error { return b.fc.close() }

// broken reports the channel's fatal error, if any; the fabric's Healthy
// folds it in so a severed bulk channel triggers failover even while the
// control channel still answers pings. The connection-level error is
// consulted too: a write-side failure records it synchronously, before the
// read loop notices the teardown.
func (b *bulkClient) broken() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dead != nil {
		return b.dead
	}
	return b.fc.brokenErr()
}

// register enlists a new operation and returns its request ID.
func (b *bulkClient) register(dst *kernels.Buffer) (uint64, *bulkPending, error) {
	p := bulkPendingPool.Get().(*bulkPending)
	p.dst = dst
	b.mu.Lock()
	if b.dead != nil {
		b.mu.Unlock()
		bulkPendingPool.Put(p)
		return 0, nil, b.dead
	}
	b.seq++
	b.pending[b.seq] = p
	id := b.seq
	if dst != nil {
		b.fetchers++
		b.rearm()
	}
	b.mu.Unlock()
	return id, p, nil
}

// release recycles a pending whose one result has been consumed.
func (b *bulkClient) release(id uint64, p *bulkPending) {
	b.mu.Lock()
	if _, still := b.pending[id]; still {
		// Failed locally before the demux resolved it (send error): the
		// fetcher accounting the demux would have done happens here.
		delete(b.pending, id)
		if p.dst != nil {
			b.fetchers--
			b.rearm()
		}
	}
	b.mu.Unlock()
	p.dst = nil
	bulkPendingPool.Put(p)
}

// failAll marks the channel dead and resolves every in-flight operation
// with err.
func (b *bulkClient) failAll(err error) {
	err = b.fc.fail(err)
	b.mu.Lock()
	if b.dead == nil {
		b.dead = err
	}
	pend := b.pending
	b.pending = make(map[uint64]*bulkPending)
	b.fetchers = 0
	b.mu.Unlock()
	for _, p := range pend {
		p.done <- bulkResult{err: err}
	}
}

// readLoop demultiplexes incoming frames: responses resolve their pending
// operation; chunk frames land directly in the operation's destination
// buffer. Stream-level corruption kills the channel (the fabric's
// failover handles the rest); chunks for unknown IDs — an operation that
// already failed — are discarded.
func (b *bulkClient) readLoop() {
	for {
		h, err := b.fc.readHeader()
		if err != nil {
			b.failAll(fmt.Errorf("transport: bulk channel: %w", wrapNetErr(err)))
			return
		}
		switch h.ftype {
		case frameResponse:
			bp, err := b.fc.readPayload(h.n)
			if err != nil {
				b.failAll(fmt.Errorf("transport: bulk channel: %w", wrapNetErr(err)))
				return
			}
			resp := getResponse()
			perr := parseResponseInto(*bp, resp)
			putFrameBuf(bp)
			if perr != nil {
				putResponse(resp)
				b.failAll(fmt.Errorf("transport: bulk channel: %w", perr))
				return
			}
			b.mu.Lock()
			p := b.pending[h.reqID]
			delete(b.pending, h.reqID)
			if p != nil && p.dst != nil {
				b.fetchers--
			}
			b.rearm()
			b.mu.Unlock()
			if p != nil {
				p.done <- bulkResult{resp: resp}
			} else {
				// The operation already failed locally; nobody will consume.
				putResponse(resp)
			}
		case frameChunk:
			if err := b.readChunk(h); err != nil {
				b.failAll(fmt.Errorf("transport: bulk channel: %w", wrapNetErr(err)))
				return
			}
			b.mu.Lock()
			b.rearm()
			b.mu.Unlock()
		default:
			b.failAll(fmt.Errorf("transport: bulk channel: unexpected frame type %d", h.ftype))
			return
		}
	}
}

// readChunk lands one incoming chunk in its transfer's destination.
func (b *bulkClient) readChunk(h frameHeader) error {
	if h.n < chunkOffsetLen {
		return fmt.Errorf("chunk frame of %d bytes", h.n)
	}
	off, err := b.fc.readChunkOffset()
	if err != nil {
		return err
	}
	n := h.n - chunkOffsetLen
	b.mu.Lock()
	p := b.pending[h.reqID]
	b.mu.Unlock()
	if p == nil || p.dst == nil {
		return b.fc.discardPayload(n)
	}
	dst, err := p.dst.RawSpan(off, n)
	if err != nil {
		// The worker sent an out-of-range chunk: protocol violation.
		return err
	}
	return b.fc.readInto(dst)
}

// receiveArray streams src's contents to the remote array id in chunks.
// Multiple receiveArray/fetchArray calls interleave on the channel.
//
// Once register succeeds the pending is owed exactly one result: a send
// failure here kills the connection, which fires failAll. Every path
// consumes that result before releasing the pending; a local write error
// takes precedence over the (less specific) teardown error.
func (b *bulkClient) receiveArray(id dag.ArrayID, meta grcuda.ArrayMeta, src *kernels.Buffer) error {
	reqID, p, err := b.register(nil)
	if err != nil {
		return err
	}
	req := &Request{Kind: MsgReceiveArray, ArrayID: id, Meta: meta}
	var werr error
	if err := b.fc.sendRequest(reqID, req); err != nil {
		werr = fmt.Errorf("transport: send %v: %w", req.Kind, err)
	} else {
		var raw []byte
		if src != nil {
			raw = src.RawBytes()
		}
		for off := 0; off < len(raw); off += b.chunk {
			// An early error response (unknown array, kind mismatch)
			// aborts the stream instead of shipping the remaining chunks.
			select {
			case res := <-p.done:
				b.release(reqID, p)
				return res.consume()
			default:
			}
			end := off + b.chunk
			if end > len(raw) {
				end = len(raw)
			}
			if err := b.fc.writeChunk(reqID, uint64(off), raw[off:end]); err != nil {
				werr = fmt.Errorf("transport: stream %v: %w", req.Kind, err)
				break
			}
		}
	}
	res := <-p.done
	b.release(reqID, p)
	if werr != nil {
		putResponse(res.resp)
		return werr
	}
	return res.consume()
}

// fetchArray pulls the remote array id into dst; incoming chunks are
// written straight into dst's storage by the read loop.
func (b *bulkClient) fetchArray(id dag.ArrayID, dst *kernels.Buffer) error {
	return b.roundTrip(dst, &Request{Kind: MsgFetchArray, ArrayID: id})
}

// pushTo commands the worker to ship array id directly to the peer at
// addr (P2P). The round trip resolves when the peer acknowledged the
// data; concurrent pushes to different peers proceed in parallel.
func (b *bulkClient) pushTo(id dag.ArrayID, addr string) error {
	return b.roundTrip(nil, &Request{Kind: MsgPushTo, ArrayID: id, PeerAddr: addr})
}

// roundTrip performs one chunkless bulk operation (the payload, if any,
// streams toward the caller). The pending's one guaranteed result is
// always consumed before release — see receiveArray.
func (b *bulkClient) roundTrip(dst *kernels.Buffer, req *Request) error {
	reqID, p, err := b.register(dst)
	if err != nil {
		return err
	}
	var werr error
	if err := b.fc.sendRequest(reqID, req); err != nil {
		werr = fmt.Errorf("transport: send %v: %w", req.Kind, err)
	}
	res := <-p.done
	b.release(reqID, p)
	if werr != nil {
		putResponse(res.resp)
		return werr
	}
	return res.consume()
}
