// Package transport provides GrOUT's distributed deployment: real TCP
// sockets between the Controller and Worker processes, with gob-encoded
// messages. It implements core.Fabric, so the same Controller code that
// drives the in-process simulation drives genuine remote workers — array
// payloads are actually serialized and shipped, kernels execute their
// numeric implementations on the worker, and peer-to-peer transfers open
// direct worker-to-worker connections, as in the paper's architecture
// (Figure 3).
//
// In this mode time is wall-clock: the sim.VirtualTime values returned by
// fabric operations are nanoseconds since the fabric connected. The
// calibrated oversubscription model remains available through each
// worker's embedded simulator, but the timing authority for distributed
// runs is reality.
package transport

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"

	"grout/internal/core"
	"grout/internal/dag"
	"grout/internal/grcuda"
	"grout/internal/kernels"
)

// MsgKind enumerates protocol requests.
type MsgKind int

const (
	// MsgPing checks liveness.
	MsgPing MsgKind = iota
	// MsgEnsureArray mirrors array metadata on the worker.
	MsgEnsureArray
	// MsgReceiveArray delivers array contents to the worker.
	MsgReceiveArray
	// MsgFetchArray pulls array contents from the worker (flushing GPU
	// state first).
	MsgFetchArray
	// MsgLaunch executes a kernel CE.
	MsgLaunch
	// MsgBuildKernel compiles mini-CUDA source on the worker.
	MsgBuildKernel
	// MsgFreeArray drops an array replica.
	MsgFreeArray
	// MsgPushTo instructs the worker to send an array directly to a peer
	// worker (P2P).
	MsgPushTo
	// MsgStats returns the worker's execution statistics.
	MsgStats
	// MsgShutdown stops the worker server.
	MsgShutdown
)

var msgNames = [...]string{
	"ping", "ensure-array", "receive-array", "fetch-array", "launch",
	"build-kernel", "free-array", "push-to", "stats", "shutdown",
}

func (k MsgKind) String() string {
	if int(k) < len(msgNames) {
		return msgNames[k]
	}
	return fmt.Sprintf("MsgKind(%d)", int(k))
}

// Request is one controller->worker (or worker->worker) message.
type Request struct {
	Kind      MsgKind
	Meta      grcuda.ArrayMeta
	ArrayID   dag.ArrayID
	Data      *kernels.Buffer
	Inv       core.Invocation
	Src       string // kernel source for MsgBuildKernel
	Signature string
	PeerAddr  string // target address for MsgPushTo
}

// Response answers a Request.
type Response struct {
	Err     string
	Data    *kernels.Buffer
	Kernels int   // MsgStats: kernels executed
	Arrays  int   // MsgStats: arrays resident
	Elapsed int64 // MsgStats: worker-simulated busy nanoseconds
}

// ok reports whether the response carries no error.
func (r *Response) ok() error {
	if r.Err != "" {
		return fmt.Errorf("transport: remote error: %s", r.Err)
	}
	return nil
}

// conn wraps a TCP connection with gob codecs. mu serializes request/
// response round trips so the pipelined controller's per-worker dispatch
// goroutines can share connections (a move between two workers uses the
// source worker's conn, which that worker's own dispatcher may be using).
type conn struct {
	mu  sync.Mutex
	raw net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
}

func newConn(raw net.Conn) *conn {
	return &conn{raw: raw, enc: gob.NewEncoder(raw), dec: gob.NewDecoder(raw)}
}

func (c *conn) send(req *Request) error { return c.enc.Encode(req) }

func (c *conn) recv() (*Request, error) {
	var req Request
	if err := c.dec.Decode(&req); err != nil {
		return nil, err
	}
	return &req, nil
}

func (c *conn) reply(resp *Response) error { return c.enc.Encode(resp) }

func (c *conn) await() (*Response, error) {
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("transport: connection closed by peer")
		}
		return nil, err
	}
	return &resp, nil
}

func (c *conn) close() error { return c.raw.Close() }

// call performs one request/response round trip. Round trips are atomic
// with respect to each other; concurrent callers queue on the connection.
func (c *conn) call(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.send(req); err != nil {
		return nil, fmt.Errorf("transport: send %v: %w", req.Kind, err)
	}
	resp, err := c.await()
	if err != nil {
		return nil, fmt.Errorf("transport: await %v: %w", req.Kind, err)
	}
	if err := resp.ok(); err != nil {
		return nil, err
	}
	return resp, nil
}
