package transport

// Recovery and deadline tests over real sockets (ISSUE 4): lineage
// recovery must survive a worker process dying with the only copy of an
// intermediate array, and a worker that accepts TCP but never answers
// must cost a bounded deadline instead of hanging the controller.

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"grout/internal/core"
	"grout/internal/gpusim"
	"grout/internal/memmodel"
	"grout/internal/policy"
)

// TestTCPLineageRecovery kills the worker process holding the sole copy
// of a relu-chain intermediate, then asserts the next consumer triggers a
// lineage replay on the survivor and the results match the fault-free
// values exactly.
func TestTCPLineageRecovery(t *testing.T) {
	var workers []*WorkerServer
	var addrs []string
	for i := 0; i < 2; i++ {
		w, err := NewWorkerServer("127.0.0.1:0", gpusim.OCIWorkerSpec("w"), nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = w.Close() })
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
	}
	fab, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fab.Close() })
	ctl := core.NewController(fab, policy.NewRoundRobin(), core.Options{Numeric: true, Failover: true})

	const n = int64(64)
	nArg := core.ScalarRef(float64(n))
	x, _ := ctl.NewArray(memmodel.Float32, n)
	y, _ := ctl.NewArray(memmodel.Float32, n)
	launch := func(kernel string, args ...core.ArgRef) {
		t.Helper()
		if _, err := ctl.Launch(core.Invocation{Kernel: kernel, Args: args}); err != nil {
			t.Fatalf("%s: %v", kernel, err)
		}
	}
	// Round-robin: fill x → w1, relu ×3 hop w2,w1,w2 — after the chain
	// the ONLY copy of x's committed version lives on worker 2.
	launch("fill", core.ArrRef(x.ID), core.ScalarRef(5), nArg)
	launch("relu", core.ArrRef(x.ID), nArg)
	launch("relu", core.ArrRef(x.ID), nArg)
	launch("relu", core.ArrRef(x.ID), nArg)
	launch("fill", core.ArrRef(y.ID), core.ScalarRef(3), nArg)
	if err := workers[1].Close(); err != nil {
		t.Fatal(err)
	}
	// The consumer of x reroutes to worker 1, discovers the loss, and the
	// Controller replays fill→relu×3 there from lineage.
	launch("axpy", core.ArrRef(y.ID), core.ArrRef(x.ID), core.ScalarRef(2), nArg)

	if _, err := ctl.HostRead(x.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.HostRead(y.ID); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < int(n); i++ {
		if got := x.Buf.At(i); got != 5 {
			t.Fatalf("x[%d] = %v, want 5", i, got)
		}
		if got := y.Buf.At(i); got != 13 {
			t.Fatalf("y[%d] = %v, want 13 (2*5+3)", i, got)
		}
	}
	if ctl.Failovers() < 1 {
		t.Fatalf("failovers = %d, want >= 1", ctl.Failovers())
	}
	if ctl.Recoveries() < 1 {
		t.Fatalf("recoveries = %d, want >= 1", ctl.Recoveries())
	}
}

// hungListener accepts connections and consumes every byte without ever
// replying: the TCP behavior of a wedged worker process.
func hungListener(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				_, _ = io.Copy(io.Discard, c)
				_ = c.Close()
			}(c)
		}
	}()
	return ln.Addr().String()
}

// TestHungWorkerCallTimeout: both wires must bound a call to a worker
// that accepts and swallows bytes but never answers. Before deadlines,
// this dial's verification ping blocked forever.
func TestHungWorkerCallTimeout(t *testing.T) {
	for _, wire := range []Wire{WireFramed, WireGob} {
		addr := hungListener(t)
		start := time.Now()
		fab, err := DialWith([]string{addr}, DialOptions{
			Wire:        wire,
			CallTimeout: 50 * time.Millisecond,
		})
		elapsed := time.Since(start)
		if err == nil {
			_ = fab.Close()
			t.Fatalf("%v: dial to hung worker succeeded", wire)
		}
		if !errors.Is(err, core.ErrTimeout) {
			t.Fatalf("%v: hung worker error = %v, want core.ErrTimeout", wire, err)
		}
		if elapsed > 5*time.Second {
			t.Fatalf("%v: hung worker cost %v, want bounded by deadline", wire, elapsed)
		}
	}
}

// TestDialTimeoutRefusedIsTransient: a refused dial comes back quickly and
// classified transient, so the controller's retry/backoff applies.
func TestDialTimeoutRefusedIsTransient(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close() // nothing listens here anymore
	_, err = DialWith([]string{addr}, DialOptions{DialTimeout: time.Second})
	if err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	if !core.IsTransient(err) {
		t.Fatalf("refused dial error = %v, want transient", err)
	}
}
