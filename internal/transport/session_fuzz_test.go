package transport

// Fuzz and adversarial-input tests for the tenant-session frame codec:
// decoding must never panic, valid payloads must round-trip bit-exactly,
// and truncated or garbage-extended payloads must be rejected — the same
// guarantees the controller↔worker codec carries (frame_fuzz_test.go).

import (
	"errors"
	"math"
	"testing"

	"grout/internal/core"
	"grout/internal/kernels"
	"grout/internal/memmodel"
)

// sampleSessionRequests covers every field of the SessionRequest layout.
func sampleSessionRequests() []*SessionRequest {
	buf := kernels.NewBuffer(memmodel.Float64, 6)
	for i := 0; i < 6; i++ {
		buf.Set(i, float64(i)*0.25-1)
	}
	f32 := kernels.NewBuffer(memmodel.Float32, 3)
	f32.Fill(42)
	return []*SessionRequest{
		{},
		{Kind: SessOpen, Name: "tenant-a"},
		{Kind: SessPing},
		{Kind: SessNewArray, Elem: memmodel.Int64, Len: 1 << 24},
		{Kind: SessHostWrite, Array: 7, Data: buf},
		{Kind: SessHostWrite, Array: 8, Data: f32},
		{Kind: SessHostRead, Array: 3},
		{Kind: SessFree, Array: 9},
		{Kind: SessBuildKernel, Src: "extern \"C\" __global__ void k() {}", Signature: "pointer float"},
		{Kind: SessElapsed},
		{Kind: SessClose},
		{Kind: SessLaunch, Inv: core.Invocation{Kernel: "axpy", Grid: 64, Block: 128,
			Args: []core.ArgRef{
				core.ArrRef(1), core.ArrRef(2),
				core.ScalarRef(math.Pi), core.ScalarRef(math.Inf(1)),
				core.ScalarRef(math.NaN()),
			}}},
	}
}

func sampleSessionResponses() []*SessionResponse {
	buf := kernels.NewBuffer(memmodel.Float32, 4)
	buf.Fill(-1.5)
	return []*SessionResponse{
		{},
		{Err: "boom", Code: CodeGeneric},
		{Err: "over quota", Code: CodeQuotaExceeded},
		{Array: 12},
		{Elapsed: 1 << 42},
		{Name: "k_generated_3"},
		{Data: buf},
	}
}

func TestSessionRequestRoundTrip(t *testing.T) {
	for i, req := range sampleSessionRequests() {
		p := appendSessionRequest(nil, req)
		got := &SessionRequest{}
		if err := parseSessionRequestInto(p, got); err != nil {
			t.Fatalf("request %d: decode: %v", i, err)
		}
		if !sessionRequestEq(req, got) {
			t.Fatalf("request %d: round trip mismatch: %+v vs %+v", i, req, got)
		}
	}
}

func TestSessionResponseRoundTrip(t *testing.T) {
	for i, resp := range sampleSessionResponses() {
		p := appendSessionResponse(nil, resp)
		got := &SessionResponse{}
		if err := parseSessionResponseInto(p, got); err != nil {
			t.Fatalf("response %d: decode: %v", i, err)
		}
		if !sessionResponseEq(resp, got) {
			t.Fatalf("response %d: round trip mismatch: %+v vs %+v", i, resp, got)
		}
	}
}

// Truncations and trailing garbage must all be rejected, never panic.
func TestSessionCodecRejectsTruncatedPayloads(t *testing.T) {
	for _, req := range sampleSessionRequests() {
		p := appendSessionRequest(nil, req)
		for cut := 0; cut < len(p); cut++ {
			if err := parseSessionRequestInto(p[:cut], &SessionRequest{}); err == nil {
				t.Fatalf("request truncation to %d of %d bytes accepted", cut, len(p))
			}
		}
		if err := parseSessionRequestInto(append(append([]byte{}, p...), 0xff), &SessionRequest{}); err == nil {
			t.Fatalf("request trailing garbage accepted")
		}
	}
	for _, resp := range sampleSessionResponses() {
		p := appendSessionResponse(nil, resp)
		for cut := 0; cut < len(p); cut++ {
			if err := parseSessionResponseInto(p[:cut], &SessionResponse{}); err == nil {
				t.Fatalf("response truncation to %d of %d bytes accepted", cut, len(p))
			}
		}
		if err := parseSessionResponseInto(append(append([]byte{}, p...), 0xaa), &SessionResponse{}); err == nil {
			t.Fatalf("response trailing garbage accepted")
		}
	}
}

// The quota sentinel must survive the wire errors.Is-ably, like the
// other typed codes.
func TestSessionQuotaCodeSurvivesWire(t *testing.T) {
	resp := &SessionResponse{}
	resp.SetErr(core.ErrQuotaExceeded)
	p := appendSessionResponse(nil, resp)
	got := &SessionResponse{}
	if err := parseSessionResponseInto(p, got); err != nil {
		t.Fatal(err)
	}
	if err := got.Ok(); !errors.Is(err, core.ErrQuotaExceeded) {
		t.Fatalf("quota error did not survive the wire: %v", err)
	}
}

func FuzzSessionRequest(f *testing.F) {
	for _, req := range sampleSessionRequests() {
		f.Add(appendSessionRequest(nil, req))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		req := &SessionRequest{}
		if err := parseSessionRequestInto(data, req); err != nil {
			return // malformed input rejected: fine
		}
		p := appendSessionRequest(nil, req)
		got := &SessionRequest{}
		if err := parseSessionRequestInto(p, got); err != nil {
			t.Fatalf("re-decode of re-encoded session request failed: %v", err)
		}
		if !sessionRequestEq(req, got) {
			t.Fatalf("round trip mismatch: %+v vs %+v", req, got)
		}
	})
}

func FuzzSessionResponse(f *testing.F) {
	for _, resp := range sampleSessionResponses() {
		f.Add(appendSessionResponse(nil, resp))
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		resp := &SessionResponse{}
		if err := parseSessionResponseInto(data, resp); err != nil {
			return
		}
		p := appendSessionResponse(nil, resp)
		got := &SessionResponse{}
		if err := parseSessionResponseInto(p, got); err != nil {
			t.Fatalf("re-decode of re-encoded session response failed: %v", err)
		}
		if !sessionResponseEq(resp, got) {
			t.Fatalf("round trip mismatch: %+v vs %+v", resp, got)
		}
	})
}
