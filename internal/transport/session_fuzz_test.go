package transport

// Fuzz and adversarial-input tests for the tenant-session frame codec:
// decoding must never panic, valid payloads must round-trip bit-exactly,
// and truncated or garbage-extended payloads must be rejected — the same
// guarantees the controller↔worker codec carries (frame_fuzz_test.go).

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"grout/internal/core"
	"grout/internal/kernels"
	"grout/internal/memmodel"
)

// sampleSessionRequests covers every field of the SessionRequest layout.
func sampleSessionRequests() []*SessionRequest {
	buf := kernels.NewBuffer(memmodel.Float64, 6)
	for i := 0; i < 6; i++ {
		buf.Set(i, float64(i)*0.25-1)
	}
	f32 := kernels.NewBuffer(memmodel.Float32, 3)
	f32.Fill(42)
	return []*SessionRequest{
		{},
		{Kind: SessOpen, Name: "tenant-a"},
		{Kind: SessPing},
		{Kind: SessNewArray, Elem: memmodel.Int64, Len: 1 << 24},
		{Kind: SessHostWrite, Array: 7, Data: buf},
		{Kind: SessHostWrite, Array: 8, Data: f32},
		{Kind: SessHostRead, Array: 3},
		{Kind: SessFree, Array: 9},
		{Kind: SessBuildKernel, Src: "extern \"C\" __global__ void k() {}", Signature: "pointer float"},
		{Kind: SessElapsed},
		{Kind: SessClose},
		{Kind: SessShardInfo},
		{Kind: SessLaunch, Inv: core.Invocation{Kernel: "axpy", Grid: 64, Block: 128,
			Args: []core.ArgRef{
				core.ArrRef(1), core.ArrRef(2),
				core.ScalarRef(math.Pi), core.ScalarRef(math.Inf(1)),
				core.ScalarRef(math.NaN()),
			}}},
	}
}

func sampleSessionResponses() []*SessionResponse {
	buf := kernels.NewBuffer(memmodel.Float32, 4)
	buf.Fill(-1.5)
	return []*SessionResponse{
		{},
		{Err: "boom", Code: CodeGeneric},
		{Err: "over quota", Code: CodeQuotaExceeded},
		{Err: "shed", Code: CodeShedded},
		{Array: 12},
		{Elapsed: 1 << 42},
		{Name: "k_generated_3"},
		{Shard: 2, ShardCount: 8},
		{Data: buf},
		// Backpressure advisories ride launch acks; covering them here
		// feeds the round-trip, truncation and fuzz suites automatically.
		{BP: &Backpressure{}},
		{BP: &Backpressure{Queued: 48, QueueCap: 64, Pause: 5 * 1000 * 1000}},
		{Shard: 1, ShardCount: 4, BP: &Backpressure{Queued: 1, QueueCap: 1, Pause: 1 << 40}},
		{Data: buf, BP: &Backpressure{Queued: 63, QueueCap: 64}},
	}
}

// sampleBackpressures covers the standalone advisory layout.
func sampleBackpressures() []*Backpressure {
	return []*Backpressure{
		{},
		{Queued: 7, QueueCap: 64, Pause: 250 * 1000},
		{Queued: 1 << 30, QueueCap: 1 << 31, Pause: 1 << 50},
		{Queued: -1, QueueCap: -1, Pause: -1}, // decoder is not a validator
	}
}

// sampleLeaseGrants covers every field of the shard-lease layout.
func sampleLeaseGrants() []*LeaseGrant {
	return []*LeaseGrant{
		{},
		{Array: 7, Version: 3, Node: 2, Owner: 0, Holder: 1},
		{Array: (1 << 40) + 12, Version: 1 << 33, Node: 15, Owner: 3, Holder: 0},
	}
}

func TestLeaseGrantRoundTrip(t *testing.T) {
	for i, g := range sampleLeaseGrants() {
		p := AppendLeaseGrant(nil, g)
		got := &LeaseGrant{}
		if err := ParseLeaseGrant(p, got); err != nil {
			t.Fatalf("grant %d: decode: %v", i, err)
		}
		if !leaseGrantEq(g, got) {
			t.Fatalf("grant %d: round trip mismatch: %+v vs %+v", i, g, got)
		}
	}
}

func TestLeaseGrantRejectsTruncatedPayloads(t *testing.T) {
	for _, g := range sampleLeaseGrants() {
		p := AppendLeaseGrant(nil, g)
		for cut := 0; cut < len(p); cut++ {
			if err := ParseLeaseGrant(p[:cut], &LeaseGrant{}); err == nil {
				t.Fatalf("lease truncation to %d of %d bytes accepted", cut, len(p))
			}
		}
		if err := ParseLeaseGrant(append(append([]byte{}, p...), 0x55), &LeaseGrant{}); err == nil {
			t.Fatalf("lease trailing garbage accepted")
		}
	}
}

func FuzzLeaseGrant(f *testing.F) {
	for _, g := range sampleLeaseGrants() {
		f.Add(AppendLeaseGrant(nil, g))
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := &LeaseGrant{}
		if err := ParseLeaseGrant(data, g); err != nil {
			return
		}
		p := AppendLeaseGrant(nil, g)
		got := &LeaseGrant{}
		if err := ParseLeaseGrant(p, got); err != nil {
			t.Fatalf("re-decode of re-encoded lease grant failed: %v", err)
		}
		if !leaseGrantEq(g, got) {
			t.Fatalf("round trip mismatch: %+v vs %+v", g, got)
		}
	})
}

func TestSessionRequestRoundTrip(t *testing.T) {
	for i, req := range sampleSessionRequests() {
		p := appendSessionRequest(nil, req)
		got := &SessionRequest{}
		if err := parseSessionRequestInto(p, got); err != nil {
			t.Fatalf("request %d: decode: %v", i, err)
		}
		if !sessionRequestEq(req, got) {
			t.Fatalf("request %d: round trip mismatch: %+v vs %+v", i, req, got)
		}
	}
}

func TestSessionResponseRoundTrip(t *testing.T) {
	for i, resp := range sampleSessionResponses() {
		p := appendSessionResponse(nil, resp)
		got := &SessionResponse{}
		if err := parseSessionResponseInto(p, got); err != nil {
			t.Fatalf("response %d: decode: %v", i, err)
		}
		if !sessionResponseEq(resp, got) {
			t.Fatalf("response %d: round trip mismatch: %+v vs %+v", i, resp, got)
		}
	}
}

// Truncations and trailing garbage must all be rejected, never panic.
func TestSessionCodecRejectsTruncatedPayloads(t *testing.T) {
	for _, req := range sampleSessionRequests() {
		p := appendSessionRequest(nil, req)
		for cut := 0; cut < len(p); cut++ {
			if err := parseSessionRequestInto(p[:cut], &SessionRequest{}); err == nil {
				t.Fatalf("request truncation to %d of %d bytes accepted", cut, len(p))
			}
		}
		if err := parseSessionRequestInto(append(append([]byte{}, p...), 0xff), &SessionRequest{}); err == nil {
			t.Fatalf("request trailing garbage accepted")
		}
	}
	for _, resp := range sampleSessionResponses() {
		p := appendSessionResponse(nil, resp)
		for cut := 0; cut < len(p); cut++ {
			if err := parseSessionResponseInto(p[:cut], &SessionResponse{}); err == nil {
				t.Fatalf("response truncation to %d of %d bytes accepted", cut, len(p))
			}
		}
		if err := parseSessionResponseInto(append(append([]byte{}, p...), 0xaa), &SessionResponse{}); err == nil {
			t.Fatalf("response trailing garbage accepted")
		}
	}
}

// The quota sentinel must survive the wire errors.Is-ably, like the
// other typed codes.
func TestSessionQuotaCodeSurvivesWire(t *testing.T) {
	resp := &SessionResponse{}
	resp.SetErr(core.ErrQuotaExceeded)
	p := appendSessionResponse(nil, resp)
	got := &SessionResponse{}
	if err := parseSessionResponseInto(p, got); err != nil {
		t.Fatal(err)
	}
	if err := got.Ok(); !errors.Is(err, core.ErrQuotaExceeded) {
		t.Fatalf("quota error did not survive the wire: %v", err)
	}
}

// The shed sentinel must survive the wire errors.Is-ably too — clients
// retry shed launches, so the typed identity is load-bearing.
func TestSessionShedCodeSurvivesWire(t *testing.T) {
	resp := &SessionResponse{}
	resp.SetErr(fmt.Errorf("shard 2 saturated: %w", core.ErrShedded))
	p := appendSessionResponse(nil, resp)
	got := &SessionResponse{}
	if err := parseSessionResponseInto(p, got); err != nil {
		t.Fatal(err)
	}
	if err := got.Ok(); !errors.Is(err, core.ErrShedded) {
		t.Fatalf("shed error did not survive the wire: %v", err)
	}
}

func TestBackpressureRoundTrip(t *testing.T) {
	for i, bp := range sampleBackpressures() {
		p := appendBackpressure(nil, bp)
		got := &Backpressure{}
		if err := parseBackpressureInto(p, got); err != nil {
			t.Fatalf("advisory %d: decode: %v", i, err)
		}
		if !backpressureEq(bp, got) {
			t.Fatalf("advisory %d: round trip mismatch: %+v vs %+v", i, bp, got)
		}
	}
}

func TestBackpressureRejectsTruncatedPayloads(t *testing.T) {
	for _, bp := range sampleBackpressures() {
		p := appendBackpressure(nil, bp)
		for cut := 0; cut < len(p); cut++ {
			if err := parseBackpressureInto(p[:cut], &Backpressure{}); err == nil {
				t.Fatalf("advisory truncation to %d of %d bytes accepted", cut, len(p))
			}
		}
		if err := parseBackpressureInto(append(append([]byte{}, p...), 0x7f), &Backpressure{}); err == nil {
			t.Fatal("advisory trailing garbage accepted")
		}
	}
}

func FuzzSessionBackpressure(f *testing.F) {
	for _, bp := range sampleBackpressures() {
		f.Add(appendBackpressure(nil, bp))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		bp := &Backpressure{}
		if err := parseBackpressureInto(data, bp); err != nil {
			return
		}
		p := appendBackpressure(nil, bp)
		got := &Backpressure{}
		if err := parseBackpressureInto(p, got); err != nil {
			t.Fatalf("re-decode of re-encoded advisory failed: %v", err)
		}
		if !backpressureEq(bp, got) {
			t.Fatalf("round trip mismatch: %+v vs %+v", bp, got)
		}
	})
}

func FuzzSessionRequest(f *testing.F) {
	for _, req := range sampleSessionRequests() {
		f.Add(appendSessionRequest(nil, req))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		req := &SessionRequest{}
		if err := parseSessionRequestInto(data, req); err != nil {
			return // malformed input rejected: fine
		}
		p := appendSessionRequest(nil, req)
		got := &SessionRequest{}
		if err := parseSessionRequestInto(p, got); err != nil {
			t.Fatalf("re-decode of re-encoded session request failed: %v", err)
		}
		if !sessionRequestEq(req, got) {
			t.Fatalf("round trip mismatch: %+v vs %+v", req, got)
		}
	})
}

func FuzzSessionResponse(f *testing.F) {
	for _, resp := range sampleSessionResponses() {
		f.Add(appendSessionResponse(nil, resp))
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		resp := &SessionResponse{}
		if err := parseSessionResponseInto(data, resp); err != nil {
			return
		}
		p := appendSessionResponse(nil, resp)
		got := &SessionResponse{}
		if err := parseSessionResponseInto(p, got); err != nil {
			t.Fatalf("re-decode of re-encoded session response failed: %v", err)
		}
		if !sessionResponseEq(resp, got) {
			t.Fatalf("round trip mismatch: %+v vs %+v", resp, got)
		}
	})
}
