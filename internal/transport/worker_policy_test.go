package transport

import (
	"errors"
	"testing"

	"grout/internal/gpusim"
)

// TestServerOptionsMemoryPolicies covers the -prefetch/-evict worker
// flags' plumbing: valid names reach the node, unknown names fail
// construction instead of silently running the baseline.
func TestServerOptionsMemoryPolicies(t *testing.T) {
	w, err := NewWorkerServerOpts("127.0.0.1:0", gpusim.OCIWorkerSpec("w"), nil,
		ServerOptions{Prefetch: "stride", Evict: "working-set"})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if p, e := w.Runtime().Node().MemoryPolicies(); p != "stride" || e != "working-set" {
		t.Fatalf("policies = %q+%q, want stride+working-set", p, e)
	}

	if _, err := NewWorkerServerOpts("127.0.0.1:0", gpusim.OCIWorkerSpec("w"), nil,
		ServerOptions{Prefetch: "bogus"}); !errors.Is(err, gpusim.ErrUnknownPrefetchPolicy) {
		t.Fatalf("bogus prefetch err = %v, want ErrUnknownPrefetchPolicy", err)
	}
	if _, err := NewWorkerServerOpts("127.0.0.1:0", gpusim.OCIWorkerSpec("w"), nil,
		ServerOptions{Evict: "bogus"}); !errors.Is(err, gpusim.ErrUnknownEvictionPolicy) {
		t.Fatalf("bogus evict err = %v, want ErrUnknownEvictionPolicy", err)
	}
}
