package transport

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"net"
	"strings"
	"testing"
	"testing/quick"

	"grout/internal/cluster"
	"grout/internal/core"
	"grout/internal/dag"
	"grout/internal/gpusim"
	"grout/internal/grcuda"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/policy"
	"grout/internal/workloads"
)

// startCluster spins up n worker servers on loopback and a controller
// connected to them over real TCP.
func startCluster(t *testing.T, n int) (*core.Controller, *TCPFabric, []*WorkerServer) {
	t.Helper()
	var workers []*WorkerServer
	var addrs []string
	for i := 0; i < n; i++ {
		w, err := NewWorkerServer("127.0.0.1:0", gpusim.OCIWorkerSpec("w"), nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = w.Close() })
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
	}
	fab, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fab.Close() })
	ctl := core.NewController(fab, policy.NewRoundRobin(), core.Options{Numeric: true})
	return ctl, fab, workers
}

func TestDialValidation(t *testing.T) {
	if _, err := Dial(nil); err == nil {
		t.Fatalf("empty address list accepted")
	}
	if _, err := Dial([]string{"127.0.0.1:1"}); err == nil {
		t.Fatalf("dead address accepted")
	}
}

func TestEndToEndAxpyOverTCP(t *testing.T) {
	ctl, _, _ := startCluster(t, 2)
	const n = int64(256)
	x, _ := ctl.NewArray(memmodel.Float32, n)
	y, _ := ctl.NewArray(memmodel.Float32, n)
	for i := 0; i < int(n); i++ {
		x.Buf.Set(i, float64(i))
		y.Buf.Set(i, 1)
	}
	if _, err := ctl.HostWrite(x.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.HostWrite(y.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Launch(core.Invocation{Kernel: "axpy",
		Args: []core.ArgRef{core.ArrRef(y.ID), core.ArrRef(x.ID),
			core.ScalarRef(2), core.ScalarRef(float64(n))}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.HostRead(y.ID); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < int(n); i++ {
		if want := 1 + 2*float64(i); y.Buf.At(i) != want {
			t.Fatalf("y[%d] = %v, want %v", i, y.Buf.At(i), want)
		}
	}
}

func TestBuildKernelDistributedOverTCP(t *testing.T) {
	ctl, _, workers := startCluster(t, 2)
	src := `
extern "C" __global__ void cube(float *x, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { x[i] = x[i] * x[i] * x[i]; }
}`
	if _, err := ctl.BuildKernel(src, "pointer float, sint32"); err != nil {
		t.Fatal(err)
	}
	// Every worker must know the kernel now.
	for i, w := range workers {
		if _, ok := w.Runtime().Registry().Lookup("cube"); !ok {
			t.Fatalf("worker %d missing compiled kernel", i)
		}
	}
	x, _ := ctl.NewArray(memmodel.Float32, 16)
	for i := 0; i < 16; i++ {
		x.Buf.Set(i, float64(i))
	}
	if _, err := ctl.HostWrite(x.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Launch(core.Invocation{Kernel: "cube", Grid: 1, Block: 16,
		Args: []core.ArgRef{core.ArrRef(x.ID), core.ScalarRef(16)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.HostRead(x.ID); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if want := math.Pow(float64(i), 3); x.Buf.At(i) != want {
			t.Fatalf("x[%d] = %v, want %v", i, x.Buf.At(i), want)
		}
	}
}

func TestP2PPushOverTCP(t *testing.T) {
	ctl, _, workers := startCluster(t, 2)
	const n = int64(64)
	x, _ := ctl.NewArray(memmodel.Float32, n)
	// fill runs on worker 1 (round-robin); relu must run on worker 2 and
	// pull the data peer-to-peer over a real socket.
	if _, err := ctl.Launch(core.Invocation{Kernel: "fill",
		Args: []core.ArgRef{core.ArrRef(x.ID), core.ScalarRef(-3), core.ScalarRef(float64(n))}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Launch(core.Invocation{Kernel: "relu",
		Args: []core.ArgRef{core.ArrRef(x.ID), core.ScalarRef(float64(n))}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.HostRead(x.ID); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < int(n); i++ {
		if x.Buf.At(i) != 0 { // relu(-3) = 0
			t.Fatalf("x[%d] = %v, want 0", i, x.Buf.At(i))
		}
	}
	if ctl.P2PMoves() != 1 {
		t.Fatalf("p2p moves = %d, want 1", ctl.P2PMoves())
	}
	// The data physically reached worker 2.
	w2 := workers[1].Runtime()
	arr := w2.Array(x.ID)
	if arr == nil || arr.Buf.At(0) != 0 {
		t.Fatalf("worker 2 replica wrong")
	}
}

func TestWorkerStats(t *testing.T) {
	ctl, fab, _ := startCluster(t, 1)
	x, _ := ctl.NewArray(memmodel.Float32, 32)
	if _, err := ctl.Launch(core.Invocation{Kernel: "fill",
		Args: []core.ArgRef{core.ArrRef(x.ID), core.ScalarRef(1), core.ScalarRef(32)}}); err != nil {
		t.Fatal(err)
	}
	st, err := fab.Stats(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kernels != 1 || st.Arrays != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if _, err := fab.Stats(9); err == nil {
		t.Fatalf("stats of unknown worker accepted")
	}
}

func TestRemoteErrorsPropagate(t *testing.T) {
	ctl, fab, _ := startCluster(t, 1)
	// Launch against an unknown kernel name must round-trip the error.
	x, _ := ctl.NewArray(memmodel.Float32, 8)
	_, err := ctl.Launch(core.Invocation{Kernel: "no_such_kernel",
		Args: []core.ArgRef{core.ArrRef(x.ID)}})
	if err == nil {
		t.Fatalf("unknown kernel accepted")
	}
	// Malformed kernel source: the message round-trips and the sentinel
	// classification survives the wire.
	if err := fab.BuildKernel("garbage(", ""); err == nil ||
		!strings.Contains(err.Error(), "remote error") ||
		!errors.Is(err, core.ErrKernelCompile) {
		t.Fatalf("remote compile error not propagated: %v", err)
	}
}

func TestWorkerDisconnectFailure(t *testing.T) {
	ctl, _, workers := startCluster(t, 2)
	x, _ := ctl.NewArray(memmodel.Float32, 8)
	// Kill worker 1 mid-session; the next CE placed there must error.
	if err := workers[0].Close(); err != nil {
		t.Fatal(err)
	}
	_, err := ctl.Launch(core.Invocation{Kernel: "fill",
		Args: []core.ArgRef{core.ArrRef(x.ID), core.ScalarRef(1), core.ScalarRef(8)}})
	if err == nil {
		t.Fatalf("launch on dead worker succeeded")
	}
}

func TestEstimateTransfer(t *testing.T) {
	f := &TCPFabric{AssumedBandwidth: 1e9}
	if got := f.EstimateTransfer(1, 2, memmodel.Bytes(1e9)); got.Seconds() != 1.0 {
		t.Fatalf("estimate = %v", got)
	}
	if f.EstimateTransfer(1, 1, memmodel.GiB) != 0 {
		t.Fatalf("self estimate nonzero")
	}
}

func TestShutdownStopsWorker(t *testing.T) {
	w, err := NewWorkerServer("127.0.0.1:0", gpusim.OCIWorkerSpec("w"), nil)
	if err != nil {
		t.Fatal(err)
	}
	fab, err := Dial([]string{w.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// A second dial must fail: the server is gone.
	if _, err := Dial([]string{w.Addr()}); err == nil {
		t.Fatalf("dial after shutdown succeeded")
	}
}

func TestMsgKindStrings(t *testing.T) {
	if MsgPing.String() != "ping" || MsgLaunch.String() != "launch" {
		t.Fatalf("msg kind strings wrong")
	}
	if MsgKind(99).String() == "" {
		t.Fatalf("unknown kind empty")
	}
}

// A client speaking garbage must not crash or wedge the worker; real
// clients connecting afterwards still work.
func TestWorkerSurvivesGarbageBytes(t *testing.T) {
	w, err := NewWorkerServer("127.0.0.1:0", gpusim.OCIWorkerSpec("w"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	raw, err := net.Dial("tcp", w.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte("\x00\xffnot gob at all\n\x01\x02\x03")); err != nil {
		t.Fatal(err)
	}
	_ = raw.Close()
	// The server must still accept and serve a well-formed client.
	fab, err := Dial([]string{w.Addr()})
	if err != nil {
		t.Fatalf("worker wedged after garbage: %v", err)
	}
	defer fab.Close()
	if _, err := fab.Stats(1); err != nil {
		t.Fatal(err)
	}
}

// Truncated frames (connection cut mid-message) must not corrupt worker
// state for other connections.
func TestWorkerSurvivesTruncatedMessage(t *testing.T) {
	w, err := NewWorkerServer("127.0.0.1:0", gpusim.OCIWorkerSpec("w"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Send the first bytes of a legitimate gob stream, then cut.
	legit, err := net.Dial("tcp", w.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := newConn(legit)
	if err := c.send(&Request{Kind: MsgEnsureArray,
		Meta: grcuda.ArrayMeta{ID: 1, Kind: memmodel.Float32, Len: 1 << 20}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.await(); err != nil {
		t.Fatal(err)
	}
	// Now write half a message and slam the connection.
	if _, err := legit.Write([]byte{0x2a, 0x01}); err != nil {
		t.Fatal(err)
	}
	_ = legit.Close()

	fab, err := Dial([]string{w.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	st, err := fab.Stats(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Arrays != 1 {
		t.Fatalf("array state lost after truncated peer: %+v", st)
	}
}

// Property: protocol messages survive a gob round trip bit-exactly.
func TestProtocolGobRoundTripProperty(t *testing.T) {
	f := func(kind uint8, id int64, scalar float64, src, sig string, vals []float32) bool {
		buf := kernels.NewBuffer(memmodel.Float32, len(vals))
		for i, v := range vals {
			buf.Set(i, float64(v))
		}
		req := &Request{
			Kind:      MsgKind(kind % 10),
			Meta:      grcuda.ArrayMeta{ID: dag.ArrayID(id), Kind: memmodel.Float32, Len: int64(len(vals))},
			ArrayID:   dag.ArrayID(id),
			Data:      buf,
			Src:       src,
			Signature: sig,
			Inv: core.Invocation{Kernel: "k", Grid: 2, Block: 3,
				Args: []core.ArgRef{core.ArrRef(dag.ArrayID(id)), core.ScalarRef(scalar)}},
		}
		var wire bytes.Buffer
		if err := gob.NewEncoder(&wire).Encode(req); err != nil {
			return false
		}
		var got Request
		if err := gob.NewDecoder(&wire).Decode(&got); err != nil {
			return false
		}
		if got.Kind != req.Kind || got.ArrayID != req.ArrayID ||
			got.Src != req.Src || got.Signature != req.Signature ||
			got.Inv.Kernel != req.Inv.Kernel || len(got.Inv.Args) != 2 {
			return false
		}
		if len(vals) > 0 {
			if got.Data == nil || got.Data.Len() != len(vals) {
				return false
			}
			if got.Data.MaxAbsDiff(req.Data) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Failover end to end: kill a worker mid-workload; the controller writes
// it off and reroutes subsequent CEs to the survivor.
func TestFailoverReroutesToSurvivor(t *testing.T) {
	var workers []*WorkerServer
	var addrs []string
	for i := 0; i < 2; i++ {
		w, err := NewWorkerServer("127.0.0.1:0", gpusim.OCIWorkerSpec("w"), nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = w.Close() })
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
	}
	fab, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fab.Close() })
	ctl := core.NewController(fab, policy.NewRoundRobin(), core.Options{Numeric: true, Failover: true})

	const n = int64(128)
	x, _ := ctl.NewArray(memmodel.Float32, n)
	for i := 0; i < int(n); i++ {
		x.Buf.Set(i, float64(i))
	}
	if _, err := ctl.HostWrite(x.ID); err != nil {
		t.Fatal(err)
	}
	// First CE lands on worker 1.
	if _, err := ctl.Launch(core.Invocation{Kernel: "relu",
		Args: []core.ArgRef{core.ArrRef(x.ID), core.ScalarRef(float64(n))}}); err != nil {
		t.Fatal(err)
	}
	// Pull the result home so the controller holds a valid copy, then
	// kill worker 1.
	if _, err := ctl.HostRead(x.ID); err != nil {
		t.Fatal(err)
	}
	if err := workers[0].Close(); err != nil {
		t.Fatal(err)
	}
	// The next CEs must succeed on worker 2 despite round-robin pointing
	// at the dead node half the time.
	for i := 0; i < 3; i++ {
		if _, err := ctl.Launch(core.Invocation{Kernel: "relu",
			Args: []core.ArgRef{core.ArrRef(x.ID), core.ScalarRef(float64(n))}}); err != nil {
			t.Fatalf("failover launch %d: %v", i, err)
		}
	}
	if ctl.Failovers() != 1 {
		t.Fatalf("failovers = %d, want 1", ctl.Failovers())
	}
	if len(ctl.DeadWorkers()) != 1 {
		t.Fatalf("dead workers = %v", ctl.DeadWorkers())
	}
	// Results still correct.
	if _, err := ctl.HostRead(x.ID); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < int(n); i++ {
		if x.Buf.At(i) != float64(i) { // relu of non-negative input
			t.Fatalf("x[%d] = %v", i, x.Buf.At(i))
		}
	}
}

// Data loss: the only valid copy of an array dies with its worker; the
// controller must report it instead of rerouting.
func TestFailoverDataLoss(t *testing.T) {
	var workers []*WorkerServer
	var addrs []string
	for i := 0; i < 2; i++ {
		w, err := NewWorkerServer("127.0.0.1:0", gpusim.OCIWorkerSpec("w"), nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = w.Close() })
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
	}
	fab, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fab.Close() })
	ctl := core.NewController(fab, policy.NewRoundRobin(), core.Options{Numeric: true, Failover: true})

	const n = int64(64)
	x, _ := ctl.NewArray(memmodel.Float32, n)
	y, _ := ctl.NewArray(memmodel.Float32, n)
	// y is derived from x's first host version on worker 1; a second
	// host write to x then overwrites the controller's buffer. After the
	// kill, y's ONLY copy is gone and its lineage root x@1 is neither
	// live anywhere nor host-held — recovery has nothing to rebuild from.
	for i := 0; i < int(n); i++ {
		x.Buf.Set(i, float64(-i))
	}
	if _, err := ctl.HostWrite(x.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Launch(core.Invocation{Kernel: "axpy",
		Args: []core.ArgRef{core.ArrRef(y.ID), core.ArrRef(x.ID), core.ScalarRef(1), core.ScalarRef(float64(n))}}); err != nil {
		t.Fatal(err)
	}
	x.Buf.Fill(1)
	if _, err := ctl.HostWrite(x.ID); err != nil {
		t.Fatal(err)
	}
	if err := workers[0].Close(); err != nil {
		t.Fatal(err)
	}
	// A reader cannot be salvaged: first failure marks worker 1 dead,
	// and the reroute discovers the data is gone for good.
	_, err = ctl.Launch(core.Invocation{Kernel: "relu",
		Args: []core.ArgRef{core.ArrRef(y.ID), core.ScalarRef(float64(n))}})
	if !errors.Is(err, core.ErrDataLost) {
		t.Fatalf("data loss not reported as core.ErrDataLost: %v", err)
	}
	if err == nil || !strings.Contains(err.Error(), "lost") {
		t.Fatalf("data loss not reported: %v", err)
	}
	// A full-overwrite writer is fine: old contents don't matter.
	if _, err := ctl.Launch(core.Invocation{Kernel: "fill",
		Args: []core.ArgRef{core.ArrRef(y.ID), core.ScalarRef(9), core.ScalarRef(float64(n))}}); err != nil {
		t.Fatalf("overwrite after data loss failed: %v", err)
	}
	if _, err := ctl.HostRead(y.ID); err != nil {
		t.Fatal(err)
	}
	if y.Buf.At(0) != 9 {
		t.Fatalf("y[0] = %v, want 9", y.Buf.At(0))
	}
}

// A full workload over TCP must numerically match the in-process local
// fabric: the two deployment modes are interchangeable.
func TestTCPMatchesLocalFabricOnWorkload(t *testing.T) {
	// Local run.
	localClu := cluster.New(cluster.PaperSpec(2))
	localFab := core.NewLocalFabric(localClu, kernels.StdRegistry(), true)
	localCtl := core.NewController(localFab, policy.NewRoundRobin(), core.Options{Numeric: true})
	localSession := &workloads.Grout{Ctl: localCtl}
	hLocal, err := workloads.CGExplicit(localSession, 48, 8, 2)
	if err != nil {
		t.Fatal(err)
	}

	// TCP run.
	ctl, _, _ := startCluster(t, 2)
	tcpSession := &workloads.Grout{Ctl: ctl}
	hTCP, err := workloads.CGExplicit(tcpSession, 48, 8, 2)
	if err != nil {
		t.Fatal(err)
	}

	for b := range hLocal.X {
		lb := localSession.Buffer(hLocal.X[b])
		tb := tcpSession.Buffer(hTCP.X[b])
		for i := 0; i < lb.Len(); i++ {
			d := lb.At(i) - tb.At(i)
			if d > 1e-6 || d < -1e-6 {
				t.Fatalf("solution differs at block %d index %d: %v vs %v",
					b, i, lb.At(i), tb.At(i))
			}
		}
	}
}

// Concurrent clients hammering one worker must serialize safely on the
// runtime lock (race detector validates this under -race).
func TestWorkerConcurrentClients(t *testing.T) {
	w, err := NewWorkerServer("127.0.0.1:0", gpusim.OCIWorkerSpec("w"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	const clients = 8
	errs := make(chan error, clients)
	for cidx := 0; cidx < clients; cidx++ {
		go func(cidx int) {
			raw, err := net.Dial("tcp", w.Addr())
			if err != nil {
				errs <- err
				return
			}
			c := newConn(raw)
			defer c.close()
			id := dag.ArrayID(cidx + 1)
			if _, err := c.call(&Request{Kind: MsgEnsureArray,
				Meta: grcuda.ArrayMeta{ID: id, Kind: memmodel.Float32, Len: 1024}}); err != nil {
				errs <- err
				return
			}
			for i := 0; i < 20; i++ {
				if _, err := c.call(&Request{Kind: MsgLaunch, Inv: core.Invocation{
					Kernel: "fill",
					Args: []core.ArgRef{core.ArrRef(id), core.ScalarRef(float64(i)),
						core.ScalarRef(1024)},
				}}); err != nil {
					errs <- err
					return
				}
				if _, err := c.call(&Request{Kind: MsgStats}); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(cidx)
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Runtime().ArrayCount(); got != clients {
		t.Fatalf("arrays = %d, want %d", got, clients)
	}
	if got := len(w.Runtime().Records()); got != clients*20 {
		t.Fatalf("kernels = %d, want %d", got, clients*20)
	}
}

// TestPipelinedDispatchOverTCP drives the pipelined controller against
// real TCP workers: TCPFabric declares ConcurrentDispatch, so per-worker
// dispatch goroutines issue moves and launches concurrently without the
// virtual-time sequencer. Numeric results must match the host-computed
// expectation.
func TestPipelinedDispatchOverTCP(t *testing.T) {
	var workers []*WorkerServer
	var addrs []string
	for i := 0; i < 3; i++ {
		w, err := NewWorkerServer("127.0.0.1:0", gpusim.OCIWorkerSpec("w"), nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = w.Close() })
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
	}
	fab, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fab.Close() })
	ctl := core.NewController(fab, policy.NewRoundRobin(),
		core.Options{Numeric: true, Pipeline: true, PipelineDepth: 4})
	defer ctl.Close()

	const n = int64(128)
	const arrays = 4
	const rounds = 6
	ids := make([]dag.ArrayID, arrays)
	want := make([][]float64, arrays)
	for a := 0; a < arrays; a++ {
		arr, err := ctl.NewArray(memmodel.Float32, n)
		if err != nil {
			t.Fatal(err)
		}
		ids[a] = arr.ID
		want[a] = make([]float64, n)
		for i := 0; i < int(n); i++ {
			v := float64(a+1)*float64(i%13) - 6
			arr.Buf.Set(i, v)
			want[a][i] = v
		}
		if _, err := ctl.HostWrite(arr.ID); err != nil {
			t.Fatal(err)
		}
	}
	// Interleaved relu chains across arrays: WAW/RAW dependencies per
	// array, independence across arrays — the round-robin placement
	// forces P2P moves between workers under concurrent dispatch.
	relu := func(x float64) float64 {
		// Mirror the float32 storage round trip of the worker kernels.
		if x < 0 {
			return 0
		}
		return float64(float32(x))
	}
	for r := 0; r < rounds; r++ {
		for a := 0; a < arrays; a++ {
			if _, err := ctl.Submit(core.Invocation{Kernel: "relu",
				Args: []core.ArgRef{core.ArrRef(ids[a]), core.ScalarRef(float64(n))}}); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < int(n); i++ {
				want[a][i] = relu(want[a][i])
			}
		}
	}
	if err := ctl.Drain(); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < arrays; a++ {
		if _, err := ctl.HostRead(ids[a]); err != nil {
			t.Fatal(err)
		}
		buf := ctl.Array(ids[a]).Buf
		for i := 0; i < int(n); i++ {
			if buf.At(i) != want[a][i] {
				t.Fatalf("array %d elem %d = %v, want %v", a, i, buf.At(i), want[a][i])
			}
		}
	}
	// One host-write per array, rounds relus per array, one host-read per
	// array at verification.
	if len(ctl.Traces()) != arrays*(rounds+2) {
		t.Fatalf("traces = %d, want %d", len(ctl.Traces()), arrays*(rounds+2))
	}
}
