package transport

// wire.go is the framed protocol's payload codec: explicit little-endian
// encode/decode of Request and Response, replacing gob's reflection-driven
// encoding on the data plane's hot path. Buffers ride as raw typed-slice
// bytes (kernels.Buffer.RawBytes — zero copy on LE hosts); everything else
// is fixed-width fields and length-prefixed strings. Decoders are written
// against adversarial input: every read is bounds-checked and a malformed
// payload yields an error, never a panic (see FuzzWireRequest /
// FuzzWireResponse).

import (
	"encoding/binary"
	"errors"
	"math"

	"grout/internal/core"
	"grout/internal/dag"
	"grout/internal/grcuda"
	"grout/internal/kernels"
	"grout/internal/memmodel"
)

// errMalformed rejects payloads that do not parse; the fuzz targets assert
// decode never fails any other way (and never panics).
var errMalformed = errors.New("transport: malformed wire payload")

// wireMaxString bounds decoded string lengths (kernel sources are the
// largest legitimate strings; 16 MiB is far above any of them).
const wireMaxString = 16 << 20

// wireMaxElems bounds decoded buffer element counts (1 GiB of float64).
const wireMaxElems = 128 << 20

// --- append-style encoders -------------------------------------------------

func appendU8(dst []byte, v uint8) []byte   { return append(dst, v) }
func appendU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }
func appendI64(dst []byte, v int64) []byte  { return appendU64(dst, uint64(v)) }
func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}
func appendString(dst []byte, s string) []byte {
	dst = appendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

// appendBuffer encodes presence, kind, element count and the raw
// little-endian bytes of b's typed slice.
func appendBuffer(dst []byte, b *kernels.Buffer) []byte {
	if b == nil {
		return appendU8(dst, 0)
	}
	dst = appendU8(dst, 1)
	dst = appendU8(dst, uint8(b.Kind))
	dst = appendU64(dst, uint64(b.Len()))
	return append(dst, b.RawBytes()...)
}

// --- cursor-style decoder --------------------------------------------------

// wireReader walks a payload with sticky error state: after the first
// failed read every subsequent read reports failure, so decode bodies can
// run straight-line and check once.
type wireReader struct {
	p   []byte
	off int
	bad bool
}

func (r *wireReader) fail() { r.bad = true }

func (r *wireReader) u8() uint8 {
	if r.bad || r.off+1 > len(r.p) {
		r.fail()
		return 0
	}
	v := r.p[r.off]
	r.off++
	return v
}

func (r *wireReader) u32() uint32 {
	if r.bad || r.off+4 > len(r.p) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.p[r.off:])
	r.off += 4
	return v
}

func (r *wireReader) u64() uint64 {
	if r.bad || r.off+8 > len(r.p) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.p[r.off:])
	r.off += 8
	return v
}

func (r *wireReader) i64() int64   { return int64(r.u64()) }
func (r *wireReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *wireReader) str() string {
	n := r.u32()
	if r.bad || n > wireMaxString || r.off+int(n) > len(r.p) {
		r.fail()
		return ""
	}
	s := string(r.p[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *wireReader) buffer() *kernels.Buffer {
	if r.u8() == 0 || r.bad {
		return nil
	}
	kind := memmodel.ElemKind(r.u8())
	if kind < memmodel.Float32 || kind > memmodel.Int64 {
		r.fail()
		return nil
	}
	elems := r.u64()
	if r.bad || elems > wireMaxElems {
		r.fail()
		return nil
	}
	nbytes := int(elems) * int(kind.Size())
	if r.off+nbytes > len(r.p) {
		r.fail()
		return nil
	}
	b := kernels.NewBuffer(kind, int(elems))
	if nbytes > 0 {
		if err := b.SetRawBytes(0, r.p[r.off:r.off+nbytes]); err != nil {
			r.fail()
			return nil
		}
		r.off += nbytes
	}
	return b
}

// done reports whether the whole payload was consumed cleanly; trailing
// garbage is rejected so a frame length can never smuggle extra bytes.
func (r *wireReader) done() bool { return !r.bad && r.off == len(r.p) }

// --- Request ---------------------------------------------------------------

// appendRequest encodes req after dst. Layout (all little-endian):
//
//	u8  kind
//	i64 meta.id   u8 meta.kind   i64 meta.len
//	i64 arrayID
//	str src       str signature  str peerAddr
//	str inv.kernel  i64 grid  i64 block  u32 nargs
//	  per arg: u8 isArray  i64 array  f64 scalar
//	buffer data (present flag, kind, elems, raw bytes)
func appendRequest(dst []byte, req *Request) []byte {
	dst = appendU8(dst, uint8(req.Kind))
	dst = appendI64(dst, int64(req.Meta.ID))
	dst = appendU8(dst, uint8(req.Meta.Kind))
	dst = appendI64(dst, req.Meta.Len)
	dst = appendI64(dst, int64(req.ArrayID))
	dst = appendString(dst, req.Src)
	dst = appendString(dst, req.Signature)
	dst = appendString(dst, req.PeerAddr)
	dst = appendString(dst, req.Inv.Kernel)
	dst = appendI64(dst, int64(req.Inv.Grid))
	dst = appendI64(dst, int64(req.Inv.Block))
	dst = appendU32(dst, uint32(len(req.Inv.Args)))
	for _, a := range req.Inv.Args {
		var isArr uint8
		if a.IsArray {
			isArr = 1
		}
		dst = appendU8(dst, isArr)
		dst = appendI64(dst, int64(a.Array))
		dst = appendF64(dst, a.Scalar)
	}
	return appendBuffer(dst, req.Data)
}

// wireMaxArgs bounds decoded invocation arity.
const wireMaxArgs = 1 << 16

// parseRequest decodes a Request payload produced by appendRequest.
func parseRequest(p []byte) (*Request, error) {
	req := &Request{}
	if err := parseRequestInto(p, req); err != nil {
		return nil, err
	}
	return req, nil
}

// parseRequestInto decodes into a caller-owned Request, so serve loops can
// reuse one struct per connection instead of allocating per message. The
// request is fully reset first; slice and buffer fields end up freshly
// allocated per parse, never aliased into the payload or a prior message.
func parseRequestInto(p []byte, req *Request) error {
	r := wireReader{p: p}
	*req = Request{}
	req.Kind = MsgKind(r.u8())
	req.Meta = grcuda.ArrayMeta{
		ID:   dag.ArrayID(r.i64()),
		Kind: memmodel.ElemKind(r.u8()),
		Len:  r.i64(),
	}
	req.ArrayID = dag.ArrayID(r.i64())
	req.Src = r.str()
	req.Signature = r.str()
	req.PeerAddr = r.str()
	req.Inv.Kernel = r.str()
	req.Inv.Grid = int(r.i64())
	req.Inv.Block = int(r.i64())
	nargs := r.u32()
	if r.bad || nargs > wireMaxArgs {
		return errMalformed
	}
	if nargs > 0 {
		req.Inv.Args = make([]core.ArgRef, nargs)
		for i := range req.Inv.Args {
			req.Inv.Args[i] = core.ArgRef{
				IsArray: r.u8() != 0,
				Array:   dag.ArrayID(r.i64()),
				Scalar:  r.f64(),
			}
		}
	}
	req.Data = r.buffer()
	if !r.done() {
		return errMalformed
	}
	return nil
}

// --- Response --------------------------------------------------------------

// appendResponse encodes resp after dst:
//
//	u8 code   str err
//	i64 kernels  i64 arrays  i64 elapsed
//	buffer data
func appendResponse(dst []byte, resp *Response) []byte {
	dst = appendU8(dst, uint8(resp.Code))
	dst = appendString(dst, resp.Err)
	dst = appendI64(dst, int64(resp.Kernels))
	dst = appendI64(dst, int64(resp.Arrays))
	dst = appendI64(dst, resp.Elapsed)
	return appendBuffer(dst, resp.Data)
}

// parseResponse decodes a Response payload produced by appendResponse.
func parseResponse(p []byte) (*Response, error) {
	resp := &Response{}
	if err := parseResponseInto(p, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// parseResponseInto decodes into a caller-owned (possibly pooled)
// Response, resetting it first.
func parseResponseInto(p []byte, resp *Response) error {
	r := wireReader{p: p}
	*resp = Response{}
	resp.Code = ErrCode(r.u8())
	resp.Err = r.str()
	resp.Kernels = int(r.i64())
	resp.Arrays = int(r.i64())
	resp.Elapsed = r.i64()
	resp.Data = r.buffer()
	if !r.done() {
		return errMalformed
	}
	return nil
}

// requestEq reports deep equality of two requests; the fuzz round-trip
// target uses it (floats compare bit-exactly, including NaN payloads,
// because both sides went through the same f64 bits).
func requestEq(a, b *Request) bool {
	if a.Kind != b.Kind || a.Meta != b.Meta || a.ArrayID != b.ArrayID ||
		a.Src != b.Src || a.Signature != b.Signature || a.PeerAddr != b.PeerAddr ||
		a.Inv.Kernel != b.Inv.Kernel || a.Inv.Grid != b.Inv.Grid || a.Inv.Block != b.Inv.Block ||
		len(a.Inv.Args) != len(b.Inv.Args) {
		return false
	}
	for i := range a.Inv.Args {
		x, y := a.Inv.Args[i], b.Inv.Args[i]
		if x.IsArray != y.IsArray || x.Array != y.Array ||
			math.Float64bits(x.Scalar) != math.Float64bits(y.Scalar) {
			return false
		}
	}
	return bufferEq(a.Data, b.Data)
}

func bufferEq(a, b *kernels.Buffer) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Kind != b.Kind || a.Len() != b.Len() {
		return false
	}
	ab, bb := a.RawBytes(), b.RawBytes()
	if len(ab) != len(bb) {
		return false
	}
	for i := range ab {
		if ab[i] != bb[i] {
			return false
		}
	}
	return true
}
