package transport

// session.go is the tenant-facing wire: the frames a client program
// exchanges with the multi-tenant gateway (internal/server). It rides the
// same framed transport as the controller↔worker protocol — 6-byte hello
// (channel helloSession), length-prefixed frames, little-endian payloads
// encoded with wire.go's append helpers and decoded with the sticky-error
// wireReader — but carries session-scoped operations: every array ID in a
// SessionRequest is local to the tenant's namespace, and the gateway maps
// it onto the global DAG. Decoders are bounds-checked against adversarial
// input like the controller wire's (see FuzzSessionRequest /
// FuzzSessionResponse).

import (
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"grout/internal/core"
	"grout/internal/dag"
	"grout/internal/kernels"
	"grout/internal/memmodel"
)

// SessKind enumerates tenant-session requests.
type SessKind uint8

const (
	// SessOpen introduces the session: Name labels the tenant in metrics.
	SessOpen SessKind = iota
	// SessPing checks gateway liveness.
	SessPing
	// SessNewArray allocates a session-scoped array (Elem, Len); the
	// response carries the assigned session-local ID.
	SessNewArray
	// SessLaunch submits a kernel CE (Inv with session-local array IDs).
	// The gateway acknowledges admission; dispatch errors surface on the
	// next synchronizing operation.
	SessLaunch
	// SessHostRead synchronizes an array and returns its contents.
	SessHostRead
	// SessHostWrite replaces an array's contents with Data.
	SessHostWrite
	// SessFree releases a session-scoped array.
	SessFree
	// SessBuildKernel compiles mini-CUDA source cluster-wide; the
	// response names the registered kernel.
	SessBuildKernel
	// SessElapsed returns the session's observed makespan (virtual ns).
	SessElapsed
	// SessClose ends the session cleanly (arrays freed server-side).
	SessClose
	// SessShardInfo asks which controller shard serves this tenant; the
	// response carries the shard index and the plane's shard count
	// (DESIGN.md §5.8). Single-controller gateways answer shard 0 of 1.
	SessShardInfo
	// SessBackpressure polls the gateway's flow-control advisory for this
	// tenant: the response's BP frame carries the launch-queue fill and a
	// suggested pause. The gateway also piggybacks the same frame on
	// SessLaunch acks when the queue runs hot, so a steadily launching
	// client rarely needs to poll (DESIGN.md §5.9).
	SessBackpressure
)

var sessNames = [...]string{
	"open", "ping", "new-array", "launch", "host-read", "host-write",
	"free", "build-kernel", "elapsed", "close", "shard-info",
	"backpressure",
}

func (k SessKind) String() string {
	if int(k) < len(sessNames) {
		return sessNames[k]
	}
	return fmt.Sprintf("SessKind(%d)", int(k))
}

// SessionRequest is one client→gateway message. Array IDs are
// session-scoped: the gateway translates them, so a tenant can never name
// another tenant's data.
type SessionRequest struct {
	Kind SessKind
	// Name labels the tenant (SessOpen); shows up in /metrics.
	Name string
	// Elem and Len describe a SessNewArray allocation.
	Elem memmodel.ElemKind
	Len  int64
	// Array is the session-local target of read/write/free.
	Array dag.ArrayID
	// Inv is a SessLaunch invocation (session-local array refs).
	Inv core.Invocation
	// Src and Signature carry SessBuildKernel source.
	Src, Signature string
	// Data is the SessHostWrite payload.
	Data *kernels.Buffer
}

// SessionResponse answers a SessionRequest.
type SessionResponse struct {
	Code ErrCode
	Err  string
	// Array is the ID assigned by SessNewArray.
	Array dag.ArrayID
	// Elapsed is SessElapsed's virtual nanoseconds.
	Elapsed int64
	// Name is the kernel registered by SessBuildKernel.
	Name string
	// Shard and ShardCount answer SessShardInfo: the controller shard
	// serving this tenant and the plane's shard count.
	Shard, ShardCount int
	// BP is the gateway's flow-control advisory: always present on a
	// SessBackpressure answer, piggybacked on SessLaunch acks when the
	// tenant's queue runs hot, nil otherwise.
	BP *Backpressure
	// Data is the SessHostRead payload.
	Data *kernels.Buffer
}

// Backpressure is the gateway's per-tenant flow-control advisory
// (DESIGN.md §5.9). It is advisory, not a protocol obligation: a client
// that ignores it still makes progress, but fills its bounded launch
// queue and ends up blocking on its own socket instead.
type Backpressure struct {
	// Queued and QueueCap report the tenant's launch-queue fill at the
	// moment the advisory was built.
	Queued, QueueCap int
	// Pause is the suggested client-side pause before the next launch:
	// the gateway's estimate of how long the tenant's backlog (token
	// deficit plus queue fill) takes to clear.
	Pause time.Duration
}

// appendBackpressure encodes bp after dst:
//
//	i64 queued   i64 queueCap   i64 pause(ns)
func appendBackpressure(dst []byte, bp *Backpressure) []byte {
	dst = appendI64(dst, int64(bp.Queued))
	dst = appendI64(dst, int64(bp.QueueCap))
	return appendI64(dst, int64(bp.Pause))
}

// parseBackpressureInto decodes into a caller-owned advisory, resetting
// it first. The payload must be exactly one advisory.
func parseBackpressureInto(p []byte, bp *Backpressure) error {
	r := wireReader{p: p}
	*bp = Backpressure{}
	bp.Queued = int(r.i64())
	bp.QueueCap = int(r.i64())
	bp.Pause = time.Duration(r.i64())
	if !r.done() {
		return errMalformed
	}
	return nil
}

// SetErr records err (with its wire code) on the response.
func (r *SessionResponse) SetErr(err error) {
	if err == nil {
		return
	}
	r.Err = err.Error()
	r.Code = codeFor(err)
}

// Ok reports the response's error, if any, rewrapped around its core
// sentinel so errors.Is works across the socket.
func (r *SessionResponse) Ok() error {
	if r.Err == "" {
		return nil
	}
	if s := r.Code.sentinel(); s != nil {
		return fmt.Errorf("grout: remote error: %s (%w)", r.Err, s)
	}
	return fmt.Errorf("grout: remote error: %s", r.Err)
}

// appendSessionRequest encodes req after dst. Layout (little-endian):
//
//	u8  kind
//	str name
//	u8  elem   i64 len   i64 arrayID
//	str inv.kernel  i64 grid  i64 block  u32 nargs
//	  per arg: u8 isArray  i64 array  f64 scalar
//	str src    str signature
//	buffer data
func appendSessionRequest(dst []byte, req *SessionRequest) []byte {
	dst = appendU8(dst, uint8(req.Kind))
	dst = appendString(dst, req.Name)
	dst = appendU8(dst, uint8(req.Elem))
	dst = appendI64(dst, req.Len)
	dst = appendI64(dst, int64(req.Array))
	dst = appendString(dst, req.Inv.Kernel)
	dst = appendI64(dst, int64(req.Inv.Grid))
	dst = appendI64(dst, int64(req.Inv.Block))
	dst = appendU32(dst, uint32(len(req.Inv.Args)))
	for _, a := range req.Inv.Args {
		var isArr uint8
		if a.IsArray {
			isArr = 1
		}
		dst = appendU8(dst, isArr)
		dst = appendI64(dst, int64(a.Array))
		dst = appendF64(dst, a.Scalar)
	}
	dst = appendString(dst, req.Src)
	dst = appendString(dst, req.Signature)
	return appendBuffer(dst, req.Data)
}

// parseSessionRequestInto decodes into a caller-owned request, resetting
// it first; decoded slices and buffers never alias the payload.
func parseSessionRequestInto(p []byte, req *SessionRequest) error {
	r := wireReader{p: p}
	*req = SessionRequest{}
	req.Kind = SessKind(r.u8())
	req.Name = r.str()
	req.Elem = memmodel.ElemKind(r.u8())
	req.Len = r.i64()
	req.Array = dag.ArrayID(r.i64())
	req.Inv.Kernel = r.str()
	req.Inv.Grid = int(r.i64())
	req.Inv.Block = int(r.i64())
	nargs := r.u32()
	if r.bad || nargs > wireMaxArgs {
		return errMalformed
	}
	if nargs > 0 {
		req.Inv.Args = make([]core.ArgRef, nargs)
		for i := range req.Inv.Args {
			req.Inv.Args[i] = core.ArgRef{
				IsArray: r.u8() != 0,
				Array:   dag.ArrayID(r.i64()),
				Scalar:  r.f64(),
			}
		}
	}
	req.Src = r.str()
	req.Signature = r.str()
	req.Data = r.buffer()
	if !r.done() {
		return errMalformed
	}
	return nil
}

// appendSessionResponse encodes resp after dst:
//
//	u8 code   str err
//	i64 arrayID   i64 elapsed   str name
//	i64 shard   i64 shardCount
//	u8 hasBP  [i64 queued  i64 queueCap  i64 pause]
//	buffer data
func appendSessionResponse(dst []byte, resp *SessionResponse) []byte {
	dst = appendU8(dst, uint8(resp.Code))
	dst = appendString(dst, resp.Err)
	dst = appendI64(dst, int64(resp.Array))
	dst = appendI64(dst, resp.Elapsed)
	dst = appendString(dst, resp.Name)
	dst = appendI64(dst, int64(resp.Shard))
	dst = appendI64(dst, int64(resp.ShardCount))
	if resp.BP != nil {
		dst = appendU8(dst, 1)
		dst = appendBackpressure(dst, resp.BP)
	} else {
		dst = appendU8(dst, 0)
	}
	return appendBuffer(dst, resp.Data)
}

// parseSessionResponseInto decodes into a caller-owned response,
// resetting it first.
func parseSessionResponseInto(p []byte, resp *SessionResponse) error {
	r := wireReader{p: p}
	*resp = SessionResponse{}
	resp.Code = ErrCode(r.u8())
	resp.Err = r.str()
	resp.Array = dag.ArrayID(r.i64())
	resp.Elapsed = r.i64()
	resp.Name = r.str()
	resp.Shard = int(r.i64())
	resp.ShardCount = int(r.i64())
	switch r.u8() {
	case 0:
	case 1:
		resp.BP = &Backpressure{
			Queued:   int(r.i64()),
			QueueCap: int(r.i64()),
			Pause:    time.Duration(r.i64()),
		}
	default:
		return errMalformed
	}
	if r.bad {
		// The presence flag (or the advisory behind it) was truncated;
		// drop the partially built BP so a bad frame parses to nothing.
		resp.BP = nil
		return errMalformed
	}
	resp.Data = r.buffer()
	if !r.done() {
		return errMalformed
	}
	return nil
}

// --- session channel ---------------------------------------------------------

// SessionConn is one tenant channel: the client side performs strict
// request/response round trips (Call); the gateway side reads requests and
// replies by ID (ReadRequest / Reply). Both ends share the framed
// transport's atomic frame writes.
type SessionConn struct {
	fc *framedConn

	// mu serializes client round trips; the session protocol is strictly
	// sequential per connection.
	mu  sync.Mutex
	seq uint64
	// timeout, when > 0, bounds one client round trip.
	timeout time.Duration
}

// DialSession opens a session channel to a gateway. dialTimeout bounds
// the TCP connect + hello (0 = 5s default, negative disables);
// callTimeout bounds each round trip (0 disables — session operations
// like HostRead legitimately wait on global synchronization).
func DialSession(addr string, dialTimeout, callTimeout time.Duration) (*SessionConn, error) {
	fc, err := dialFramed(addr, helloSession, pickTimeout(dialTimeout, DefaultDialTimeout))
	if err != nil {
		return nil, err
	}
	c := &SessionConn{fc: fc}
	if callTimeout > 0 {
		c.timeout = callTimeout
	}
	return c, nil
}

// AcceptSession validates the hello on an accepted gateway connection and
// wraps it. hsTimeout bounds the hello read (0 disables).
func AcceptSession(raw net.Conn, hsTimeout time.Duration) (*SessionConn, error) {
	if hsTimeout > 0 {
		_ = raw.SetReadDeadline(time.Now().Add(hsTimeout))
	}
	var hello [helloLen]byte
	if _, err := io.ReadFull(raw, hello[:]); err != nil {
		return nil, fmt.Errorf("transport: session hello: %w", wrapNetErr(err))
	}
	if string(hello[:4]) != helloMagic || hello[4] != helloSession {
		return nil, fmt.Errorf("transport: not a session hello")
	}
	if hsTimeout > 0 {
		_ = raw.SetReadDeadline(time.Time{})
	}
	return &SessionConn{fc: newFramedConn(raw, nil)}, nil
}

// Close tears the channel down; safe to call twice.
func (c *SessionConn) Close() error { return c.fc.close() }

// RemoteAddr names the peer (gateway logs).
func (c *SessionConn) RemoteAddr() net.Addr { return c.fc.raw.RemoteAddr() }

// Call performs one client round trip. Remote errors come back via
// SessionResponse.Ok (sentinel-wrapped); transport errors kill the
// connection.
func (c *SessionConn) Call(req *SessionRequest) (*SessionResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	id := c.seq
	bp := getFrameBuf()
	*bp = appendSessionRequest(*bp, req)
	err := c.fc.writeFrame(frameRequest, id, *bp)
	putFrameBuf(bp)
	if err != nil {
		return nil, fmt.Errorf("transport: send session %v: %w", req.Kind, err)
	}
	if c.timeout > 0 {
		c.fc.armRead(c.timeout)
		defer c.fc.armRead(0)
	}
	h, err := c.fc.readHeader()
	if err != nil {
		return nil, c.fc.fail(fmt.Errorf("transport: await session %v: %w", req.Kind, wrapNetErr(err)))
	}
	if h.ftype != frameResponse || h.reqID != id {
		return nil, c.fc.fail(fmt.Errorf("transport: await session %v: unexpected frame type %d id %d",
			req.Kind, h.ftype, h.reqID))
	}
	pb, err := c.fc.readPayload(h.n)
	if err != nil {
		return nil, c.fc.fail(fmt.Errorf("transport: await session %v: %w", req.Kind, wrapNetErr(err)))
	}
	resp := &SessionResponse{}
	perr := parseSessionResponseInto(*pb, resp)
	putFrameBuf(pb)
	if perr != nil {
		return nil, c.fc.fail(fmt.Errorf("transport: await session %v: %w", req.Kind, perr))
	}
	return resp, nil
}

// ReadRequest reads the next client request into req (gateway serve
// loop), returning its frame ID for the Reply.
func (c *SessionConn) ReadRequest(req *SessionRequest) (uint64, error) {
	h, err := c.fc.readHeader()
	if err != nil {
		return 0, err
	}
	if h.ftype != frameRequest {
		return 0, fmt.Errorf("transport: session channel: unexpected frame type %d", h.ftype)
	}
	bp, err := c.fc.readPayload(h.n)
	if err != nil {
		return 0, err
	}
	perr := parseSessionRequestInto(*bp, req)
	putFrameBuf(bp)
	if perr != nil {
		return 0, perr
	}
	return h.reqID, nil
}

// Reply answers one request (gateway serve loop).
func (c *SessionConn) Reply(reqID uint64, resp *SessionResponse) error {
	bp := getFrameBuf()
	*bp = appendSessionResponse(*bp, resp)
	err := c.fc.writeFrame(frameResponse, reqID, *bp)
	putFrameBuf(bp)
	return err
}

// sessionRequestEq reports deep equality (fuzz round trips; floats
// compare bit-exactly).
func sessionRequestEq(a, b *SessionRequest) bool {
	if a.Kind != b.Kind || a.Name != b.Name || a.Elem != b.Elem || a.Len != b.Len ||
		a.Array != b.Array || a.Src != b.Src || a.Signature != b.Signature ||
		a.Inv.Kernel != b.Inv.Kernel || a.Inv.Grid != b.Inv.Grid || a.Inv.Block != b.Inv.Block ||
		len(a.Inv.Args) != len(b.Inv.Args) {
		return false
	}
	for i := range a.Inv.Args {
		x, y := a.Inv.Args[i], b.Inv.Args[i]
		if x.IsArray != y.IsArray || x.Array != y.Array ||
			math.Float64bits(x.Scalar) != math.Float64bits(y.Scalar) {
			return false
		}
	}
	return bufferEq(a.Data, b.Data)
}

func sessionResponseEq(a, b *SessionResponse) bool {
	return a.Code == b.Code && a.Err == b.Err && a.Array == b.Array &&
		a.Elapsed == b.Elapsed && a.Name == b.Name &&
		a.Shard == b.Shard && a.ShardCount == b.ShardCount &&
		backpressureEq(a.BP, b.BP) &&
		bufferEq(a.Data, b.Data)
}

func backpressureEq(a, b *Backpressure) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || *a == *b
}
