package transport

// Shard-lease frames (DESIGN.md §5.8). When a sharded control plane
// exports an array replica across shards, the grant — which array, at
// which committed version, parked on which worker, owned by which
// shard — is the control-plane record both sides keep. In-process
// planes (internal/shard) hand the grant around as a struct; a
// multi-process plane ships it over the framed wire, so the encoding
// lives here next to the other codecs, little-endian and
// bounds-checked against adversarial input like the rest
// (FuzzLeaseGrant).

import (
	"grout/internal/cluster"
	"grout/internal/dag"
)

// LeaseGrant records one cross-shard array lease: the owning shard
// exported array Array at committed version Version to worker Node of
// shard Shard. The replica is a lineage recovery root for the owner
// (core.Controller.LeaseArray).
type LeaseGrant struct {
	// Array is the global array ID (already shard-disjoint via
	// core.Options.ArrayIDBase).
	Array dag.ArrayID
	// Version is the committed version the replica holds.
	Version uint64
	// Node is the worker holding the replica.
	Node cluster.NodeID
	// Owner and Holder are the granting and hosting shard indices.
	Owner, Holder int32
}

// AppendLeaseGrant encodes g after dst. Layout (little-endian):
//
//	i64 array   u64 version   i64 node   u32 owner   u32 holder
func AppendLeaseGrant(dst []byte, g *LeaseGrant) []byte {
	dst = appendI64(dst, int64(g.Array))
	dst = appendU64(dst, g.Version)
	dst = appendI64(dst, int64(g.Node))
	dst = appendU32(dst, uint32(g.Owner))
	dst = appendU32(dst, uint32(g.Holder))
	return dst
}

// ParseLeaseGrant decodes a lease grant, rejecting truncated or
// oversized payloads.
func ParseLeaseGrant(p []byte, g *LeaseGrant) error {
	r := wireReader{p: p}
	*g = LeaseGrant{}
	g.Array = dag.ArrayID(r.i64())
	g.Version = r.u64()
	g.Node = cluster.NodeID(r.i64())
	g.Owner = int32(r.u32())
	g.Holder = int32(r.u32())
	if !r.done() {
		return errMalformed
	}
	return nil
}

// leaseGrantEq reports deep equality (fuzz round trips).
func leaseGrantEq(a, b *LeaseGrant) bool { return *a == *b }
