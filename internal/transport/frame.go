package transport

// frame.go is the framed protocol's transport layer: length-prefixed
// frames over TCP, preceded by a 6-byte connection hello that names the
// channel (control or bulk). The worker sniffs the hello's magic to tell
// framed clients from legacy gob clients, so one listener serves both
// wires during the migration release.
//
// Frame layout (little-endian):
//
//	u32 payload length  (bounded by frameMaxPayload)
//	u8  frame type
//	u64 request id
//	payload...
//
// Chunk frames additionally open their payload with a u64 byte offset;
// the remaining bytes are raw array data, written straight out of (and
// read straight into) kernels.Buffer storage. Frame writes are atomic
// under a per-connection mutex, so chunks of concurrent transfers
// interleave on the bulk channel instead of queuing whole-payload.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"grout/internal/core"
)

// helloMagic opens every framed connection. The first byte (0x47, "G")
// can never open a legitimate gob stream's type definition, so sniffing
// four bytes is unambiguous in practice.
const helloMagic = "GRT\x01" // magic + wire version 1

const (
	// helloControl tags the low-latency request/response channel.
	helloControl byte = 0
	// helloBulk tags the chunked array-data channel.
	helloBulk byte = 1
	// helloSession tags a tenant session channel: a client program
	// talking to the multi-tenant gateway (internal/server) rather than
	// a controller talking to a worker.
	helloSession byte = 2
)

// helloLen is magic(4) + channel(1) + reserved(1).
const helloLen = 6

const (
	frameRequest  byte = 1 // payload: wire-encoded Request
	frameResponse byte = 2 // payload: wire-encoded Response
	frameChunk    byte = 3 // payload: u64 byte offset + raw array bytes
)

// frameHeaderLen is len(4) + type(1) + reqID(8).
const frameHeaderLen = 13

// frameMaxPayload bounds a single frame; larger lengths mark a corrupt or
// hostile stream. Bulk data always travels as chunks well below this.
const frameMaxPayload = 64 << 20

// chunkOffsetLen is the u64 byte-offset prefix of a chunk frame payload.
const chunkOffsetLen = 8

// DefaultChunkBytes is the default bulk-transfer chunk size. 256 KiB is
// large enough to amortize per-frame overhead to <0.01% and small enough
// that interleaved transfers get scheduled fairly.
const DefaultChunkBytes = 256 << 10

// Default deadlines. A worker that accepts TCP but never replies must not
// stall the controller forever; these bound every phase of a conversation
// while staying far above any legitimate latency. All are configurable
// (DialOptions / ServerOptions); negative disables.
const (
	// DefaultDialTimeout bounds connection establishment (both wires; the
	// gob path's old hard-coded 5 s now comes from here too).
	DefaultDialTimeout = 5 * time.Second
	// DefaultCallTimeout bounds one control round trip (ping, launch,
	// build, ensure, free).
	DefaultCallTimeout = 30 * time.Second
	// DefaultChunkTimeout bounds *progress* on a bulk transfer: each
	// chunk (or the final response) must arrive within this window, so a
	// multi-GiB transfer gets unlimited total time while a wedged peer is
	// detected in one window.
	DefaultChunkTimeout = 30 * time.Second
)

// pickTimeout resolves a configured timeout: zero means the default,
// negative disables (returns 0).
func pickTimeout(configured, def time.Duration) time.Duration {
	if configured == 0 {
		return def
	}
	if configured < 0 {
		return 0
	}
	return configured
}

// wrapNetErr classifies a connection-level failure for the Controller's
// retry logic: deadline expiries become core.ErrTimeout, everything else
// (resets, refusals, EOF from a dying peer) core.ErrTransient. Remote
// *execution* errors never pass through here — they arrive as clean
// Responses and must not look retryable.
func wrapNetErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, core.ErrTimeout) || errors.Is(err, core.ErrTransient) {
		return err
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: %v", core.ErrTimeout, err)
	}
	return fmt.Errorf("%w: %v", core.ErrTransient, err)
}

// normalizeChunk clamps a configured chunk size to a sane, 8-byte-aligned
// value (alignment keeps chunk boundaries on element boundaries for every
// element kind).
func normalizeChunk(n int) int {
	if n <= 0 {
		n = DefaultChunkBytes
	}
	if n < 4<<10 {
		n = 4 << 10
	}
	if n > frameMaxPayload-chunkOffsetLen {
		n = frameMaxPayload - chunkOffsetLen
	}
	return n &^ 7
}

// framePool recycles frame scratch buffers (headers + encoded payloads)
// across sends and receives.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

func getFrameBuf() *[]byte  { return framePool.Get().(*[]byte) }
func putFrameBuf(b *[]byte) { *b = (*b)[:0]; framePool.Put(b) }

// framedConn is one framed channel. Writes take wmu and go out with a
// single writev (net.Buffers), so a frame is never torn; reads are owned
// by a single reader (the demux goroutine on clients, the serve loop on
// workers) and need no locking.
type framedConn struct {
	raw net.Conn
	r   *bufio.Reader

	wmu   sync.Mutex
	w     io.Writer // == raw normally; tests substitute fault injectors
	iov   [2][]byte // scratch backing for writev, reused under wmu
	wbufs net.Buffers
	whdr  [frameHeaderLen + chunkOffsetLen]byte

	// rbuf is reader-side scratch for frame headers and chunk offsets; the
	// single reader goroutine owns it. A field rather than a local because
	// locals passed to io.ReadFull escape — one heap allocation per frame.
	rbuf [frameHeaderLen]byte

	// writeTimeout, when > 0, arms a write deadline before every frame so
	// a peer that stops draining its socket cannot block a sender
	// forever. Read deadlines are the reader's business: the control
	// channel arms per round trip, the bulk channel per progress window.
	writeTimeout time.Duration

	cmu    sync.Mutex
	closed bool
	broken error // first fatal I/O error; the channel is dead after it
}

// newFramedConn wraps an established connection whose hello has already
// been exchanged. r reads from the connection (possibly through the
// worker's sniffing bufio.Reader).
func newFramedConn(raw net.Conn, r *bufio.Reader) *framedConn {
	if r == nil {
		r = bufio.NewReaderSize(raw, 64<<10)
	}
	return &framedConn{raw: raw, r: r, w: raw}
}

// dialFramed opens a framed channel of the given kind to addr. A positive
// timeout bounds both the TCP connect and the hello write; zero dials
// without a deadline (tests and legacy callers).
func dialFramed(addr string, channel byte, timeout time.Duration) (*framedConn, error) {
	var raw net.Conn
	var err error
	if timeout > 0 {
		raw, err = net.DialTimeout("tcp", addr, timeout)
	} else {
		raw, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, wrapNetErr(err))
	}
	if timeout > 0 {
		_ = raw.SetWriteDeadline(time.Now().Add(timeout))
	}
	var hello [helloLen]byte
	copy(hello[:], helloMagic)
	hello[4] = channel
	if _, err := raw.Write(hello[:]); err != nil {
		_ = raw.Close()
		return nil, fmt.Errorf("transport: hello to %s: %w", addr, wrapNetErr(err))
	}
	if timeout > 0 {
		_ = raw.SetWriteDeadline(time.Time{})
	}
	return newFramedConn(raw, nil), nil
}

// armRead sets the connection's read deadline d from now, or clears it
// when d is zero. Safe to call while another goroutine is blocked in a
// read — the runtime applies the new deadline to the in-flight read,
// which is exactly what lets the control channel bound an already-pending
// await.
func (c *framedConn) armRead(d time.Duration) {
	if d > 0 {
		_ = c.raw.SetReadDeadline(time.Now().Add(d))
	} else {
		_ = c.raw.SetReadDeadline(time.Time{})
	}
}

// armWrite arms the per-frame write deadline, if configured. Callers hold
// wmu.
func (c *framedConn) armWrite() {
	if c.writeTimeout > 0 {
		_ = c.raw.SetWriteDeadline(time.Now().Add(c.writeTimeout))
	}
}

// fail records the first fatal error and tears the connection down so the
// peer's reader unblocks.
func (c *framedConn) fail(err error) error {
	c.cmu.Lock()
	if c.broken == nil {
		c.broken = err
	}
	err = c.broken
	if !c.closed {
		c.closed = true
		_ = c.raw.Close()
	}
	c.cmu.Unlock()
	return err
}

// brokenErr reports the recorded fatal error, if any.
func (c *framedConn) brokenErr() error {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	return c.broken
}

// Close implements io.Closer (the worker's connection tracking).
func (c *framedConn) Close() error { return c.close() }

func (c *framedConn) close() error {
	c.cmu.Lock()
	if c.closed {
		c.cmu.Unlock()
		return nil
	}
	c.closed = true
	c.cmu.Unlock()
	return c.raw.Close()
}

// writeFrame sends one frame whose payload is entirely in p.
func (c *framedConn) writeFrame(ftype byte, reqID uint64, p []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.brokenErr(); err != nil {
		return err
	}
	hdr := c.whdr[:frameHeaderLen]
	binary.LittleEndian.PutUint32(hdr, uint32(len(p)))
	hdr[4] = ftype
	binary.LittleEndian.PutUint64(hdr[5:], reqID)
	c.armWrite()
	if err := c.writev(hdr, p); err != nil {
		return c.fail(fmt.Errorf("transport: write frame: %w", wrapNetErr(err)))
	}
	return nil
}

// writev sends hdr then p as one gather write (a single syscall on TCP
// conns). The net.Buffers header lives on the connection — WriteTo
// consumes the slice, so it is rebuilt from the iov backing each call
// without allocating. Callers hold wmu.
func (c *framedConn) writev(hdr, p []byte) error {
	c.iov[0], c.iov[1] = hdr, p
	c.wbufs = c.iov[:]
	_, err := c.wbufs.WriteTo(c.w)
	c.wbufs = nil
	c.iov[0], c.iov[1] = nil, nil
	return err
}

// writeChunk sends one bulk chunk: data (which aliases buffer storage —
// zero copy) at byte offset off of the transfer reqID.
func (c *framedConn) writeChunk(reqID, off uint64, data []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.brokenErr(); err != nil {
		return err
	}
	hdr := c.whdr[:frameHeaderLen+chunkOffsetLen]
	binary.LittleEndian.PutUint32(hdr, uint32(chunkOffsetLen+len(data)))
	hdr[4] = frameChunk
	binary.LittleEndian.PutUint64(hdr[5:], reqID)
	binary.LittleEndian.PutUint64(hdr[frameHeaderLen:], off)
	c.armWrite()
	if err := c.writev(hdr, data); err != nil {
		return c.fail(fmt.Errorf("transport: write chunk: %w", wrapNetErr(err)))
	}
	return nil
}

// frameHeader is one decoded frame header.
type frameHeader struct {
	n     int
	ftype byte
	reqID uint64
}

// readHeader reads and validates the next frame header. The caller owns
// consuming exactly n payload bytes afterwards (readPayload / readInto /
// discardPayload).
func (c *framedConn) readHeader() (frameHeader, error) {
	hdr := c.rbuf[:frameHeaderLen]
	if _, err := io.ReadFull(c.r, hdr); err != nil {
		return frameHeader{}, err
	}
	h := frameHeader{
		n:     int(binary.LittleEndian.Uint32(hdr)),
		ftype: hdr[4],
		reqID: binary.LittleEndian.Uint64(hdr[5:]),
	}
	if h.n > frameMaxPayload {
		return frameHeader{}, fmt.Errorf("transport: frame of %d bytes exceeds limit", h.n)
	}
	switch h.ftype {
	case frameRequest, frameResponse, frameChunk:
	default:
		return frameHeader{}, fmt.Errorf("transport: unknown frame type %d", h.ftype)
	}
	return h, nil
}

// readPayload reads an n-byte payload into a pooled buffer. Callers must
// putFrameBuf the result.
func (c *framedConn) readPayload(n int) (*[]byte, error) {
	bp := getFrameBuf()
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	if _, err := io.ReadFull(c.r, *bp); err != nil {
		putFrameBuf(bp)
		return nil, err
	}
	return bp, nil
}

// readChunkOffset reads a chunk payload's u64 byte-offset prefix.
func (c *framedConn) readChunkOffset() (int, error) {
	off := c.rbuf[:chunkOffsetLen]
	if _, err := io.ReadFull(c.r, off); err != nil {
		return 0, err
	}
	return int(binary.LittleEndian.Uint64(off)), nil
}

// readInto fills dst from the connection (chunk payloads land directly in
// buffer storage).
func (c *framedConn) readInto(dst []byte) error {
	_, err := io.ReadFull(c.r, dst)
	return err
}

// discardPayload drops n payload bytes (chunks of an aborted transfer).
func (c *framedConn) discardPayload(n int) error {
	_, err := c.r.Discard(n)
	return err
}

// sendRequest encodes req and sends it as a request frame.
func (c *framedConn) sendRequest(reqID uint64, req *Request) error {
	bp := getFrameBuf()
	*bp = appendRequest(*bp, req)
	err := c.writeFrame(frameRequest, reqID, *bp)
	putFrameBuf(bp)
	return err
}

// sendResponse encodes resp and sends it as a response frame.
func (c *framedConn) sendResponse(reqID uint64, resp *Response) error {
	bp := getFrameBuf()
	*bp = appendResponse(*bp, resp)
	err := c.writeFrame(frameResponse, reqID, *bp)
	putFrameBuf(bp)
	return err
}
