package transport

// Fuzz and adversarial-input tests for the framed wire codec: decoding
// must never panic, valid payloads must round-trip bit-exactly, and
// corrupt or truncated frames must be rejected at the frame layer.

import (
	"io"
	"math"
	"net"
	"testing"

	"grout/internal/core"
	"grout/internal/grcuda"
	"grout/internal/kernels"
	"grout/internal/memmodel"
)

// sampleRequests covers every field of the Request layout.
func sampleRequests() []*Request {
	buf := kernels.NewBuffer(memmodel.Float64, 5)
	for i := 0; i < 5; i++ {
		buf.Set(i, float64(i)*1.5-2)
	}
	i32 := kernels.NewBuffer(memmodel.Int32, 3)
	i32.Set(0, -7)
	i32.Set(2, 1<<30)
	return []*Request{
		{},
		{Kind: MsgPing},
		{Kind: MsgEnsureArray, Meta: grcuda.ArrayMeta{ID: 42, Kind: memmodel.Int64, Len: 1 << 20}},
		{Kind: MsgReceiveArray, ArrayID: 7, Data: buf},
		{Kind: MsgReceiveArray, ArrayID: 8, Data: i32},
		{Kind: MsgBuildKernel, Src: "extern \"C\" __global__ void k() {}", Signature: "pointer float"},
		{Kind: MsgPushTo, ArrayID: 3, PeerAddr: "127.0.0.1:9999"},
		{Kind: MsgLaunch, Inv: core.Invocation{Kernel: "axpy", Grid: 12, Block: 256,
			Args: []core.ArgRef{
				core.ArrRef(1), core.ArrRef(2),
				core.ScalarRef(math.Pi), core.ScalarRef(math.Inf(-1)),
				core.ScalarRef(math.NaN()),
			}}},
	}
}

func TestWireRequestRoundTrip(t *testing.T) {
	for i, req := range sampleRequests() {
		p := appendRequest(nil, req)
		got, err := parseRequest(p)
		if err != nil {
			t.Fatalf("request %d: decode: %v", i, err)
		}
		if !requestEq(req, got) {
			t.Fatalf("request %d: round trip mismatch: %+v vs %+v", i, req, got)
		}
	}
}

func TestWireResponseRoundTrip(t *testing.T) {
	buf := kernels.NewBuffer(memmodel.Float32, 4)
	buf.Fill(3.5)
	for i, resp := range []*Response{
		{},
		{Err: "boom", Code: CodeGeneric},
		{Err: "no such array", Code: CodeArrayNotFound},
		{Kernels: 12, Arrays: 3, Elapsed: 1 << 40},
		{Data: buf},
	} {
		p := appendResponse(nil, resp)
		got, err := parseResponse(p)
		if err != nil {
			t.Fatalf("response %d: decode: %v", i, err)
		}
		if !responseEq(resp, got) {
			t.Fatalf("response %d: round trip mismatch: %+v vs %+v", i, resp, got)
		}
	}
}

func responseEq(a, b *Response) bool {
	return a.Err == b.Err && a.Code == b.Code &&
		a.Kernels == b.Kernels && a.Arrays == b.Arrays && a.Elapsed == b.Elapsed &&
		bufferEq(a.Data, b.Data)
}

// Truncations of a valid payload must all be rejected, never panic.
func TestWireRejectsTruncatedPayloads(t *testing.T) {
	for _, req := range sampleRequests() {
		p := appendRequest(nil, req)
		for cut := 0; cut < len(p); cut++ {
			if _, err := parseRequest(p[:cut]); err == nil {
				t.Fatalf("truncation to %d of %d bytes accepted", cut, len(p))
			}
		}
		// Trailing garbage must be rejected too: a frame length cannot
		// smuggle extra bytes.
		if _, err := parseRequest(append(append([]byte{}, p...), 0xff)); err == nil {
			t.Fatalf("trailing garbage accepted")
		}
	}
}

func FuzzWireRequest(f *testing.F) {
	for _, req := range sampleRequests() {
		f.Add(appendRequest(nil, req))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := parseRequest(data)
		if err != nil {
			return // malformed input rejected: fine
		}
		// Anything that decodes must re-encode to an equivalent request.
		p := appendRequest(nil, req)
		got, err := parseRequest(p)
		if err != nil {
			t.Fatalf("re-decode of re-encoded request failed: %v", err)
		}
		if !requestEq(req, got) {
			t.Fatalf("round trip mismatch: %+v vs %+v", req, got)
		}
	})
}

func FuzzWireResponse(f *testing.F) {
	f.Add(appendResponse(nil, &Response{Err: "x", Code: CodeOOM, Kernels: 1}))
	f.Add(appendResponse(nil, &Response{Data: kernels.NewBuffer(memmodel.Int64, 2)}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := parseResponse(data)
		if err != nil {
			return
		}
		p := appendResponse(nil, resp)
		got, err := parseResponse(p)
		if err != nil {
			t.Fatalf("re-decode of re-encoded response failed: %v", err)
		}
		if !responseEq(resp, got) {
			t.Fatalf("round trip mismatch: %+v vs %+v", resp, got)
		}
	})
}

// pipeConns builds a connected framed pair over an in-memory pipe.
func pipeConns() (*framedConn, *framedConn) {
	a, b := net.Pipe()
	return newFramedConn(a, nil), newFramedConn(b, nil)
}

func TestFramedRoundTripOverPipe(t *testing.T) {
	client, server := pipeConns()
	defer client.close()
	defer server.close()
	want := sampleRequests()[7] // the launch with NaN/Inf scalars
	go func() {
		_ = client.sendRequest(99, want)
	}()
	h, err := server.readHeader()
	if err != nil {
		t.Fatal(err)
	}
	if h.ftype != frameRequest || h.reqID != 99 {
		t.Fatalf("header = %+v", h)
	}
	bp, err := server.readPayload(h.n)
	if err != nil {
		t.Fatal(err)
	}
	defer putFrameBuf(bp)
	got, err := parseRequest(*bp)
	if err != nil {
		t.Fatal(err)
	}
	if !requestEq(want, got) {
		t.Fatalf("framed round trip mismatch")
	}
}

// Corrupt frame headers — oversize length, unknown type, truncation — must
// error out of readHeader rather than wedge or panic.
func TestFrameRejectsCorruptHeaders(t *testing.T) {
	t.Run("oversize", func(t *testing.T) {
		a, b := net.Pipe()
		fc := newFramedConn(b, nil)
		defer fc.close()
		go func() {
			var hdr [frameHeaderLen]byte
			hdr[0], hdr[1], hdr[2], hdr[3] = 0xff, 0xff, 0xff, 0xff // ~4 GiB
			hdr[4] = frameRequest
			_, _ = a.Write(hdr[:])
		}()
		if _, err := fc.readHeader(); err == nil {
			t.Fatalf("oversize frame accepted")
		}
	})
	t.Run("unknown-type", func(t *testing.T) {
		a, b := net.Pipe()
		fc := newFramedConn(b, nil)
		defer fc.close()
		go func() {
			var hdr [frameHeaderLen]byte
			hdr[4] = 0x7f
			_, _ = a.Write(hdr[:])
		}()
		if _, err := fc.readHeader(); err == nil {
			t.Fatalf("unknown frame type accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		a, b := net.Pipe()
		fc := newFramedConn(b, nil)
		defer fc.close()
		go func() {
			_, _ = a.Write([]byte{1, 2, 3})
			_ = a.Close()
		}()
		if _, err := fc.readHeader(); err == nil {
			t.Fatalf("truncated header accepted")
		}
	})
}

func TestNormalizeChunk(t *testing.T) {
	if got := normalizeChunk(0); got != DefaultChunkBytes {
		t.Fatalf("normalizeChunk(0) = %d", got)
	}
	if got := normalizeChunk(1); got != 4<<10 {
		t.Fatalf("normalizeChunk(1) = %d", got)
	}
	if got := normalizeChunk(1 << 30); got > frameMaxPayload-chunkOffsetLen {
		t.Fatalf("normalizeChunk(1GiB) = %d exceeds frame limit", got)
	}
	if got := normalizeChunk(12345); got%8 != 0 {
		t.Fatalf("normalizeChunk(12345) = %d not 8-byte aligned", got)
	}
}

// A garbage hello that happens to carry the magic but an unknown channel
// byte must be dropped cleanly.
func TestWorkerRejectsUnknownChannelHello(t *testing.T) {
	w, err := NewWorkerServer("127.0.0.1:0", testSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	raw, err := net.Dial("tcp", w.Addr())
	if err != nil {
		t.Fatal(err)
	}
	hello := []byte(helloMagic)
	hello = append(hello, 0x42, 0) // unknown channel
	if _, err := raw.Write(hello); err != nil {
		t.Fatal(err)
	}
	// The server must close the connection.
	buf := make([]byte, 1)
	_ = raw.SetReadDeadline(deadlineSoon())
	if _, err := raw.Read(buf); err == io.EOF {
		// closed, as expected
	} else if err == nil {
		t.Fatalf("server sent data on unknown channel")
	}
	_ = raw.Close()
	// And still serve real clients.
	fab, err := Dial([]string{w.Addr()})
	if err != nil {
		t.Fatalf("worker wedged after bad hello: %v", err)
	}
	defer fab.Close()
}
