package transport

import (
	"fmt"
	"net"
	"sync"
	"time"

	"grout/internal/cluster"
	"grout/internal/core"
	"grout/internal/dag"
	"grout/internal/grcuda"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/sim"
)

// Wire selects the wire protocol a fabric speaks.
type Wire int

const (
	// WireFramed is the length-prefixed binary protocol with the
	// control/bulk channel split (the default).
	WireFramed Wire = iota
	// WireGob is the legacy reflection-driven gob codec over a single
	// connection per worker; kept for one release behind `-wire gob`.
	WireGob
)

// ParseWire maps a flag value to a Wire.
func ParseWire(name string) (Wire, error) {
	switch name {
	case "", "framed":
		return WireFramed, nil
	case "gob":
		return WireGob, nil
	default:
		return 0, fmt.Errorf("transport: unknown wire protocol %q (want framed or gob)", name)
	}
}

func (w Wire) String() string {
	if w == WireGob {
		return "gob"
	}
	return "framed"
}

// DialOptions tune a TCP fabric. For the three timeouts, zero selects the
// package default and a negative value disables the deadline entirely —
// so a zero-valued DialOptions behaves safely out of the box.
type DialOptions struct {
	// Wire selects the protocol (default WireFramed).
	Wire Wire
	// ChunkBytes is the bulk-transfer chunk size (default
	// DefaultChunkBytes; clamped to [4 KiB, 64 MiB) and 8-byte aligned).
	ChunkBytes int
	// DialTimeout bounds connection establishment on both wires (default
	// DefaultDialTimeout — previously the gob path hard-coded 5 s and the
	// framed path had none).
	DialTimeout time.Duration
	// CallTimeout bounds one control round trip — ping, launch, ensure,
	// build, free (default DefaultCallTimeout). A worker that accepts TCP
	// but never answers surfaces as core.ErrTimeout instead of a hang.
	CallTimeout time.Duration
	// ChunkTimeout bounds *progress* on incoming bulk data: each chunk of
	// a fetch must arrive within the window (default DefaultChunkTimeout).
	// Total transfer time stays unbounded.
	ChunkTimeout time.Duration
	// RetryAttempts, when > 0, lets the fabric redial a worker whose
	// connections broke (a transient network drop, not a dead process):
	// an operation that finds its link broken re-establishes it up to
	// this many times before reporting the failure.
	RetryAttempts int
	// RetryBackoff is the base delay between redial attempts, doubling up
	// to 8x with each failure (default 100ms).
	RetryBackoff time.Duration
}

// link is one worker's connection set: either a framed control+bulk pair
// or a single legacy gob connection.
type link struct {
	ctrl *ctrlConn   // framed control channel
	bulk *bulkClient // framed bulk channel
	gob  *conn       // legacy wire (nil when framed)
}

// call performs a control round trip.
func (l *link) call(req *Request) (*Response, error) {
	if l.gob != nil {
		return l.gob.call(req)
	}
	return l.ctrl.call(req)
}

// broken reports whether either framed channel recorded a fatal error (the
// gob wire tracks none; it never reports broken).
func (l *link) broken() bool {
	if l.gob != nil {
		return false
	}
	return l.ctrl.fc.brokenErr() != nil || l.bulk.broken() != nil
}

func (l *link) close() error {
	if l.gob != nil {
		return l.gob.close()
	}
	err := l.ctrl.close()
	if berr := l.bulk.close(); err == nil {
		err = berr
	}
	return err
}

// TCPFabric implements core.Fabric over real sockets: worker i+1 is the
// process listening at addrs[i]. On the framed wire each worker gets a
// dedicated bulk channel, so array transfers — streamed in chunks and
// interleaved by request ID — never head-of-line-block pings, launches or
// failover probes on the control channel, and bulk operations on
// different arrays run concurrently (the core.Fabric concurrent-bulk
// contract). Returned times are wall-clock nanoseconds since Dial.
type TCPFabric struct {
	addrs []string
	// lmu guards links: redial (RetryAttempts > 0) replaces entries at
	// runtime while concurrent dispatchers read them.
	lmu     sync.RWMutex
	links   map[cluster.NodeID]*link
	started time.Time
	wire    Wire
	chunk   int
	// Resolved timeouts/retry policy (see DialOptions).
	dialTimeout  time.Duration
	callTimeout  time.Duration
	chunkTimeout time.Duration
	retries      int
	backoff      time.Duration
	// AssumedBandwidth (bytes/s) feeds EstimateTransfer for
	// min-transfer-time scheduling; defaults to the paper's 500 MB/s
	// worker NICs.
	AssumedBandwidth float64
}

// Dial connects to every worker over the framed wire and verifies
// liveness.
func Dial(addrs []string) (*TCPFabric, error) {
	return DialWith(addrs, DialOptions{})
}

// DialWith is Dial with explicit wire/chunking options.
func DialWith(addrs []string, opts DialOptions) (*TCPFabric, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("transport: no worker addresses")
	}
	backoff := opts.RetryBackoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	f := &TCPFabric{
		addrs:            addrs,
		links:            make(map[cluster.NodeID]*link),
		started:          time.Now(),
		wire:             opts.Wire,
		chunk:            normalizeChunk(opts.ChunkBytes),
		dialTimeout:      pickTimeout(opts.DialTimeout, DefaultDialTimeout),
		callTimeout:      pickTimeout(opts.CallTimeout, DefaultCallTimeout),
		chunkTimeout:     pickTimeout(opts.ChunkTimeout, DefaultChunkTimeout),
		retries:          opts.RetryAttempts,
		backoff:          backoff,
		AssumedBandwidth: 500e6,
	}
	for i, addr := range addrs {
		l, err := f.dialWorker(addr)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("transport: worker %d at %s: %w", i+1, addr, err)
		}
		f.links[cluster.NodeID(i+1)] = l
	}
	return f, nil
}

// dialWorker opens one worker's connection set and pings it. Both wires
// share the fabric's dial timeout (the gob path's former hard-coded 5 s).
func (f *TCPFabric) dialWorker(addr string) (*link, error) {
	if f.wire == WireGob {
		var raw net.Conn
		var err error
		if f.dialTimeout > 0 {
			raw, err = net.DialTimeout("tcp", addr, f.dialTimeout)
		} else {
			raw, err = net.Dial("tcp", addr)
		}
		if err != nil {
			return nil, fmt.Errorf("dial: %w", wrapNetErr(err))
		}
		c := newConn(raw)
		c.timeout = f.callTimeout
		l := &link{gob: c}
		if _, err := l.call(&Request{Kind: MsgPing}); err != nil {
			_ = l.close()
			return nil, fmt.Errorf("ping: %w", err)
		}
		return l, nil
	}
	ctrlFC, err := dialFramed(addr, helloControl, f.dialTimeout)
	if err != nil {
		return nil, err
	}
	bulkFC, err := dialFramed(addr, helloBulk, f.dialTimeout)
	if err != nil {
		_ = ctrlFC.close()
		return nil, err
	}
	ctrlFC.writeTimeout = f.callTimeout
	bulkFC.writeTimeout = f.chunkTimeout
	cc := newCtrlConn(ctrlFC)
	cc.timeout = f.callTimeout
	bc := newBulkClient(bulkFC, f.chunk)
	bc.chunkTimeout = f.chunkTimeout
	l := &link{ctrl: cc, bulk: bc}
	if _, err := l.call(&Request{Kind: MsgPing}); err != nil {
		_ = l.close()
		return nil, fmt.Errorf("ping: %w", err)
	}
	return l, nil
}

// Wire reports the protocol this fabric speaks.
func (f *TCPFabric) Wire() Wire { return f.wire }

// Close closes all worker connections.
func (f *TCPFabric) Close() error {
	f.lmu.Lock()
	links := f.links
	f.links = make(map[cluster.NodeID]*link)
	f.lmu.Unlock()
	var firstErr error
	for _, l := range links {
		if err := l.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Shutdown asks every worker process to exit, then closes connections.
func (f *TCPFabric) Shutdown() error {
	f.lmu.RLock()
	links := make([]*link, 0, len(f.links))
	for _, l := range f.links {
		links = append(links, l)
	}
	f.lmu.RUnlock()
	for _, l := range links {
		_, _ = l.call(&Request{Kind: MsgShutdown})
	}
	return f.Close()
}

// now reports wall time since Dial as a virtual timestamp.
func (f *TCPFabric) now() sim.VirtualTime {
	return sim.VirtualTime(time.Since(f.started).Nanoseconds())
}

func (f *TCPFabric) worker(w cluster.NodeID) (*link, error) {
	f.lmu.RLock()
	l, ok := f.links[w]
	f.lmu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("transport: unknown worker %v", w)
	}
	if f.retries <= 0 || !l.broken() {
		return l, nil
	}
	return f.redial(w, l)
}

// redial replaces a broken link with a fresh connection set, retrying with
// capped exponential backoff. Concurrent dispatchers race here benignly:
// the first to swap in a healthy link wins, the rest adopt it. A worker
// process that actually died keeps refusing and the error propagates into
// the Controller's failover instead.
func (f *TCPFabric) redial(w cluster.NodeID, stale *link) (*link, error) {
	addr := f.addrs[w-1]
	var lastErr error
	delay := f.backoff
	for attempt := 0; attempt < f.retries; attempt++ {
		if attempt > 0 {
			time.Sleep(delay)
			if delay < 8*f.backoff {
				delay *= 2
			}
		}
		f.lmu.RLock()
		cur := f.links[w]
		f.lmu.RUnlock()
		if cur != nil && cur != stale && !cur.broken() {
			return cur, nil // another caller already reconnected
		}
		nl, err := f.dialWorker(addr)
		if err != nil {
			lastErr = err
			continue
		}
		f.lmu.Lock()
		cur = f.links[w]
		if cur != nil && cur != stale && !cur.broken() {
			f.lmu.Unlock()
			_ = nl.close()
			return cur, nil
		}
		f.links[w] = nl
		f.lmu.Unlock()
		if cur != nil {
			_ = cur.close()
		}
		return nl, nil
	}
	return nil, fmt.Errorf("transport: worker %v unreachable after %d redial attempts: %w",
		w, f.retries, lastErr)
}

// Workers implements core.Fabric.
func (f *TCPFabric) Workers() []cluster.NodeID {
	ids := make([]cluster.NodeID, len(f.addrs))
	for i := range f.addrs {
		ids[i] = cluster.NodeID(i + 1)
	}
	return ids
}

// EnsureArray implements core.Fabric.
func (f *TCPFabric) EnsureArray(w cluster.NodeID, meta grcuda.ArrayMeta) error {
	l, err := f.worker(w)
	if err != nil {
		return err
	}
	_, err = l.call(&Request{Kind: MsgEnsureArray, Meta: meta})
	return err
}

// MoveArray implements core.Fabric: controller->worker ships srcBuf,
// worker->controller fetches into dstBuf, worker->worker triggers a direct
// P2P push. On the framed wire all three travel the bulk channel in
// chunks; concurrent moves of different arrays interleave.
func (f *TCPFabric) MoveArray(id dag.ArrayID, src, dst cluster.NodeID,
	_ sim.VirtualTime, srcBuf, dstBuf *kernels.Buffer) (sim.VirtualTime, error) {
	if src == dst {
		return f.now(), nil
	}
	switch {
	case src == cluster.ControllerID:
		l, err := f.worker(dst)
		if err != nil {
			return 0, err
		}
		if l.gob != nil {
			if _, err := l.gob.call(&Request{Kind: MsgReceiveArray, ArrayID: id, Data: srcBuf}); err != nil {
				return 0, err
			}
			break
		}
		meta := grcuda.ArrayMeta{ID: id}
		if srcBuf != nil {
			meta.Kind = srcBuf.Kind
			meta.Len = int64(srcBuf.Len())
		}
		if err := l.bulk.receiveArray(id, meta, srcBuf); err != nil {
			return 0, err
		}
	case dst == cluster.ControllerID:
		l, err := f.worker(src)
		if err != nil {
			return 0, err
		}
		if l.gob != nil {
			resp, err := l.gob.call(&Request{Kind: MsgFetchArray, ArrayID: id})
			if err != nil {
				return 0, err
			}
			if resp.Data != nil && dstBuf != nil {
				n := dstBuf.Len()
				if resp.Data.Len() < n {
					n = resp.Data.Len()
				}
				for i := 0; i < n; i++ {
					dstBuf.Set(i, resp.Data.At(i))
				}
			}
			break
		}
		if err := l.bulk.fetchArray(id, dstBuf); err != nil {
			return 0, err
		}
	default: // worker -> worker P2P
		l, err := f.worker(src)
		if err != nil {
			return 0, err
		}
		if l.gob != nil {
			if _, err := l.gob.call(&Request{Kind: MsgPushTo, ArrayID: id, PeerAddr: f.addrs[dst-1]}); err != nil {
				return 0, err
			}
			break
		}
		if err := l.bulk.pushTo(id, f.addrs[dst-1]); err != nil {
			return 0, err
		}
	}
	return f.now(), nil
}

// Launch implements core.Fabric.
func (f *TCPFabric) Launch(w cluster.NodeID, inv core.Invocation, _ sim.VirtualTime) (sim.VirtualTime, error) {
	l, err := f.worker(w)
	if err != nil {
		return 0, err
	}
	if _, err := l.call(&Request{Kind: MsgLaunch, Inv: inv}); err != nil {
		return 0, err
	}
	return f.now(), nil
}

// ConcurrentDispatch implements core.ConcurrentDispatcher: operations are
// real I/O — control round trips serialize per connection, bulk transfers
// interleave on each worker's dedicated bulk channel — and times are
// wall-clock, not shared virtual timelines, so the pipelined controller
// may dispatch to different workers concurrently without the global
// ticket sequencer.
func (f *TCPFabric) ConcurrentDispatch() bool { return true }

// EstimateTransfer implements core.Fabric using the assumed NIC bandwidth.
func (f *TCPFabric) EstimateTransfer(src, dst cluster.NodeID, n memmodel.Bytes) sim.VirtualTime {
	if src == dst || n <= 0 || f.AssumedBandwidth <= 0 {
		return 0
	}
	return sim.VirtualTime(float64(n) / f.AssumedBandwidth * 1e9)
}

// FreeArray implements core.Fabric.
func (f *TCPFabric) FreeArray(w cluster.NodeID, id dag.ArrayID) error {
	l, err := f.worker(w)
	if err != nil {
		return err
	}
	_, err = l.call(&Request{Kind: MsgFreeArray, ArrayID: id})
	return err
}

// Healthy implements core.Fabric: a liveness ping over the worker's
// control connection. A worker whose bulk channel died is reported
// unhealthy even while its control channel still answers — the data plane
// is gone, so the Controller's failover must write the worker off and
// reship replicas elsewhere.
func (f *TCPFabric) Healthy(w cluster.NodeID) bool {
	l, err := f.worker(w)
	if err != nil {
		return false
	}
	if l.bulk != nil && l.bulk.broken() != nil {
		return false
	}
	_, err = l.call(&Request{Kind: MsgPing})
	return err == nil
}

// BuildKernel implements core.KernelBuilder: the source compiles on every
// worker.
func (f *TCPFabric) BuildKernel(src, signature string) error {
	for _, id := range f.Workers() {
		l, err := f.worker(id)
		if err != nil {
			return err
		}
		if _, err := l.call(&Request{Kind: MsgBuildKernel, Src: src, Signature: signature}); err != nil {
			return err
		}
	}
	return nil
}

// WorkerStats reports a worker's execution statistics.
type WorkerStats struct {
	Kernels int
	Arrays  int
	Elapsed time.Duration
}

// Stats queries one worker.
func (f *TCPFabric) Stats(w cluster.NodeID) (WorkerStats, error) {
	l, err := f.worker(w)
	if err != nil {
		return WorkerStats{}, err
	}
	resp, err := l.call(&Request{Kind: MsgStats})
	if err != nil {
		return WorkerStats{}, err
	}
	return WorkerStats{
		Kernels: resp.Kernels,
		Arrays:  resp.Arrays,
		Elapsed: time.Duration(resp.Elapsed),
	}, nil
}

var _ core.Fabric = (*TCPFabric)(nil)
var _ core.KernelBuilder = (*TCPFabric)(nil)
var _ core.ConcurrentDispatcher = (*TCPFabric)(nil)
