package transport

import (
	"fmt"
	"net"
	"time"

	"grout/internal/cluster"
	"grout/internal/core"
	"grout/internal/dag"
	"grout/internal/grcuda"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/sim"
)

// TCPFabric implements core.Fabric over real sockets: worker i+1 is the
// process listening at addrs[i]. Returned times are wall-clock nanoseconds
// since Dial.
type TCPFabric struct {
	addrs   []string
	conns   map[cluster.NodeID]*conn
	started time.Time
	// AssumedBandwidth (bytes/s) feeds EstimateTransfer for
	// min-transfer-time scheduling; defaults to the paper's 500 MB/s
	// worker NICs.
	AssumedBandwidth float64
}

// Dial connects to every worker and verifies liveness.
func Dial(addrs []string) (*TCPFabric, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("transport: no worker addresses")
	}
	f := &TCPFabric{
		addrs:            addrs,
		conns:            make(map[cluster.NodeID]*conn),
		started:          time.Now(),
		AssumedBandwidth: 500e6,
	}
	for i, addr := range addrs {
		raw, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("transport: dial worker %d at %s: %w", i+1, addr, err)
		}
		c := newConn(raw)
		if _, err := c.call(&Request{Kind: MsgPing}); err != nil {
			f.Close()
			return nil, fmt.Errorf("transport: ping worker %d: %w", i+1, err)
		}
		f.conns[cluster.NodeID(i+1)] = c
	}
	return f, nil
}

// Close closes all worker connections.
func (f *TCPFabric) Close() error {
	var firstErr error
	for _, c := range f.conns {
		if err := c.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	f.conns = make(map[cluster.NodeID]*conn)
	return firstErr
}

// Shutdown asks every worker process to exit, then closes connections.
func (f *TCPFabric) Shutdown() error {
	for _, c := range f.conns {
		_, _ = c.call(&Request{Kind: MsgShutdown})
	}
	return f.Close()
}

// now reports wall time since Dial as a virtual timestamp.
func (f *TCPFabric) now() sim.VirtualTime {
	return sim.VirtualTime(time.Since(f.started).Nanoseconds())
}

func (f *TCPFabric) worker(w cluster.NodeID) (*conn, error) {
	c, ok := f.conns[w]
	if !ok {
		return nil, fmt.Errorf("transport: unknown worker %v", w)
	}
	return c, nil
}

// Workers implements core.Fabric.
func (f *TCPFabric) Workers() []cluster.NodeID {
	ids := make([]cluster.NodeID, len(f.addrs))
	for i := range f.addrs {
		ids[i] = cluster.NodeID(i + 1)
	}
	return ids
}

// EnsureArray implements core.Fabric.
func (f *TCPFabric) EnsureArray(w cluster.NodeID, meta grcuda.ArrayMeta) error {
	c, err := f.worker(w)
	if err != nil {
		return err
	}
	_, err = c.call(&Request{Kind: MsgEnsureArray, Meta: meta})
	return err
}

// MoveArray implements core.Fabric: controller->worker ships srcBuf,
// worker->controller fetches into dstBuf, worker->worker triggers a direct
// P2P push.
func (f *TCPFabric) MoveArray(id dag.ArrayID, src, dst cluster.NodeID,
	_ sim.VirtualTime, srcBuf, dstBuf *kernels.Buffer) (sim.VirtualTime, error) {
	if src == dst {
		return f.now(), nil
	}
	switch {
	case src == cluster.ControllerID:
		c, err := f.worker(dst)
		if err != nil {
			return 0, err
		}
		if _, err := c.call(&Request{Kind: MsgReceiveArray, ArrayID: id, Data: srcBuf}); err != nil {
			return 0, err
		}
	case dst == cluster.ControllerID:
		c, err := f.worker(src)
		if err != nil {
			return 0, err
		}
		resp, err := c.call(&Request{Kind: MsgFetchArray, ArrayID: id})
		if err != nil {
			return 0, err
		}
		if resp.Data != nil && dstBuf != nil {
			n := dstBuf.Len()
			if resp.Data.Len() < n {
				n = resp.Data.Len()
			}
			for i := 0; i < n; i++ {
				dstBuf.Set(i, resp.Data.At(i))
			}
		}
	default: // worker -> worker P2P
		c, err := f.worker(src)
		if err != nil {
			return 0, err
		}
		if _, err := c.call(&Request{Kind: MsgPushTo, ArrayID: id, PeerAddr: f.addrs[dst-1]}); err != nil {
			return 0, err
		}
	}
	return f.now(), nil
}

// Launch implements core.Fabric.
func (f *TCPFabric) Launch(w cluster.NodeID, inv core.Invocation, _ sim.VirtualTime) (sim.VirtualTime, error) {
	c, err := f.worker(w)
	if err != nil {
		return 0, err
	}
	if _, err := c.call(&Request{Kind: MsgLaunch, Inv: inv}); err != nil {
		return 0, err
	}
	return f.now(), nil
}

// ConcurrentDispatch implements core.ConcurrentDispatcher: operations are
// real I/O over per-worker connections (each serialized by its own lock)
// and times are wall-clock, not shared virtual timelines — so the
// pipelined controller may dispatch to different workers concurrently
// without the global ticket sequencer.
func (f *TCPFabric) ConcurrentDispatch() bool { return true }

// EstimateTransfer implements core.Fabric using the assumed NIC bandwidth.
func (f *TCPFabric) EstimateTransfer(src, dst cluster.NodeID, n memmodel.Bytes) sim.VirtualTime {
	if src == dst || n <= 0 || f.AssumedBandwidth <= 0 {
		return 0
	}
	return sim.VirtualTime(float64(n) / f.AssumedBandwidth * 1e9)
}

// FreeArray implements core.Fabric.
func (f *TCPFabric) FreeArray(w cluster.NodeID, id dag.ArrayID) error {
	c, err := f.worker(w)
	if err != nil {
		return err
	}
	_, err = c.call(&Request{Kind: MsgFreeArray, ArrayID: id})
	return err
}

// Healthy implements core.Fabric: a liveness ping over the worker's
// connection.
func (f *TCPFabric) Healthy(w cluster.NodeID) bool {
	c, err := f.worker(w)
	if err != nil {
		return false
	}
	_, err = c.call(&Request{Kind: MsgPing})
	return err == nil
}

// BuildKernel implements core.KernelBuilder: the source compiles on every
// worker.
func (f *TCPFabric) BuildKernel(src, signature string) error {
	for _, id := range f.Workers() {
		c, err := f.worker(id)
		if err != nil {
			return err
		}
		if _, err := c.call(&Request{Kind: MsgBuildKernel, Src: src, Signature: signature}); err != nil {
			return err
		}
	}
	return nil
}

// WorkerStats reports a worker's execution statistics.
type WorkerStats struct {
	Kernels int
	Arrays  int
	Elapsed time.Duration
}

// Stats queries one worker.
func (f *TCPFabric) Stats(w cluster.NodeID) (WorkerStats, error) {
	c, err := f.worker(w)
	if err != nil {
		return WorkerStats{}, err
	}
	resp, err := c.call(&Request{Kind: MsgStats})
	if err != nil {
		return WorkerStats{}, err
	}
	return WorkerStats{
		Kernels: resp.Kernels,
		Arrays:  resp.Arrays,
		Elapsed: time.Duration(resp.Elapsed),
	}, nil
}

var _ core.Fabric = (*TCPFabric)(nil)
var _ core.KernelBuilder = (*TCPFabric)(nil)
var _ core.ConcurrentDispatcher = (*TCPFabric)(nil)
