package transport

// Data-plane tests: bulk-channel fault injection and failover, control
// latency under bulk load, typed errors across the wire, the legacy gob
// wire end to end, and concurrent interleaved transfers.

import (
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"grout/internal/cluster"
	"grout/internal/core"
	"grout/internal/dag"
	"grout/internal/gpusim"
	"grout/internal/grcuda"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/policy"
)

func testSpec() gpusim.NodeSpec { return gpusim.OCIWorkerSpec("w") }

func deadlineSoon() time.Time { return time.Now().Add(2 * time.Second) }

// failAfterWriter passes budget bytes through, then fails every write:
// a bulk link severed mid-stream. Writes arrive under the framed
// connection's write mutex, so no extra locking is needed.
type failAfterWriter struct {
	w      io.Writer
	budget int
}

var errInjectedSever = errors.New("injected fault: bulk link severed")

func (f *failAfterWriter) Write(p []byte) (int, error) {
	if f.budget <= 0 {
		return 0, errInjectedSever
	}
	if len(p) > f.budget {
		n, _ := f.w.Write(p[:f.budget])
		f.budget = 0
		return n, errInjectedSever
	}
	f.budget -= len(p)
	return f.w.Write(p)
}

// severBulk injects a failing writer into the worker's bulk channel so the
// next bulk transfer dies partway through a chunk stream.
func severBulk(t *testing.T, fab *TCPFabric, w cluster.NodeID, afterBytes int) {
	t.Helper()
	l, ok := fab.links[w]
	if !ok || l.bulk == nil {
		t.Fatalf("no framed bulk link for worker %v", w)
	}
	fc := l.bulk.fc
	fc.wmu.Lock()
	fc.w = &failAfterWriter{w: fc.w, budget: afterBytes}
	fc.wmu.Unlock()
}

// Severing the bulk channel mid-chunk must surface as a dead worker: the
// control channel still answers pings, but the fabric reports the worker
// unhealthy and the controller fails over, reshipping the array from its
// own valid replica to the survivor.
func TestBulkSeverMidChunkFailover(t *testing.T) {
	var addrs []string
	for i := 0; i < 2; i++ {
		w, err := NewWorkerServer("127.0.0.1:0", testSpec(), nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = w.Close() })
		addrs = append(addrs, w.Addr())
	}
	fab, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fab.Close() })
	ctl := core.NewController(fab, policy.NewRoundRobin(), core.Options{Numeric: true, Failover: true})

	const n = int64(1 << 18) // 1 MiB of float32: several chunks at the default size
	x, _ := ctl.NewArray(memmodel.Float32, n)
	for i := 0; i < int(n); i++ {
		x.Buf.Set(i, float64(i%101)-50)
	}
	if _, err := ctl.HostWrite(x.ID); err != nil {
		t.Fatal(err)
	}
	// Let the request frame and the first chunk through, then cut the link
	// inside the second chunk.
	severBulk(t, fab, 1, DefaultChunkBytes+4096)
	// The first CE round-robins onto worker 1, whose bulk channel dies
	// mid-transfer; failover must reship from the controller's replica and
	// run on worker 2.
	if _, err := ctl.Launch(core.Invocation{Kernel: "relu",
		Args: []core.ArgRef{core.ArrRef(x.ID), core.ScalarRef(float64(n))}}); err != nil {
		t.Fatalf("launch after bulk sever: %v", err)
	}
	if ctl.Failovers() != 1 {
		t.Fatalf("failovers = %d, want 1", ctl.Failovers())
	}
	if dead := ctl.DeadWorkers(); len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("dead workers = %v, want [1]", dead)
	}
	if fab.Healthy(1) {
		t.Fatalf("worker with severed bulk channel reported healthy")
	}
	// Numerics survived the reshipment.
	if _, err := ctl.HostRead(x.ID); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < int(n); i++ {
		want := float64(i%101) - 50
		if want < 0 {
			want = 0
		}
		if x.Buf.At(i) != want {
			t.Fatalf("x[%d] = %v, want %v", i, x.Buf.At(i), want)
		}
	}
}

// A large bulk transfer must not head-of-line-block the control channel:
// pings sampled during a 256 MiB stream stay within 10x the idle latency.
func TestPingNotBlockedByBulkTransfer(t *testing.T) {
	if testing.Short() {
		t.Skip("256 MiB transfer")
	}
	w, err := NewWorkerServer("127.0.0.1:0", testSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = w.Close() })
	fab, err := Dial([]string{w.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fab.Close() })

	const elems = int64(64 << 20) // 64 Mi float32 = 256 MiB
	meta := grcuda.ArrayMeta{ID: 1, Kind: memmodel.Float32, Len: elems}
	if err := fab.EnsureArray(1, meta); err != nil {
		t.Fatal(err)
	}
	src := kernels.NewBuffer(memmodel.Float32, int(elems))

	l := fab.links[1]
	ping := func() time.Duration {
		start := time.Now()
		if _, err := l.call(&Request{Kind: MsgPing}); err != nil {
			t.Fatalf("ping: %v", err)
		}
		return time.Since(start)
	}
	// Idle baseline: median of repeated pings, floored at 1ms so the 10x
	// budget measures channel head-of-line blocking rather than goroutine
	// scheduling latency — on a loaded single-core machine a ping round
	// trip pays a few ms of scheduler queueing while the transfer's
	// memcpys saturate the CPU. The failure mode under test is orders of
	// magnitude larger: a serialized wire would park pings behind the
	// whole remaining transfer, hundreds of ms.
	var idle []time.Duration
	for i := 0; i < 30; i++ {
		idle = append(idle, ping())
	}
	for i := range idle {
		for j := i + 1; j < len(idle); j++ {
			if idle[j] < idle[i] {
				idle[i], idle[j] = idle[j], idle[i]
			}
		}
	}
	base := idle[len(idle)/2]
	if base < time.Millisecond {
		base = time.Millisecond
	}

	done := make(chan error, 1)
	go func() {
		_, err := fab.MoveArray(1, cluster.ControllerID, 1, 0, src, nil)
		done <- err
	}()
	// Sample pings for as long as the transfer runs; at least one must get
	// through quickly — the control channel is a separate connection and
	// never queues behind chunk frames.
	best := time.Duration(1 << 62)
	samples := 0
	for sampling := true; sampling; {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("bulk transfer: %v", err)
			}
			sampling = false
		default:
			if d := ping(); d < best {
				best = d
			}
			samples++
		}
	}
	if samples == 0 {
		t.Skipf("transfer finished before any ping sample")
	}
	if limit := 10 * base; best > limit {
		t.Fatalf("best ping during 256 MiB transfer = %v, limit %v (idle median %v, %d samples)",
			best, limit, base, samples)
	}
}

// Sentinel errors must survive the framed wire: errors.Is works on the
// controller side for array-not-found, kernel-compile and OOM failures.
func TestTypedErrorsAcrossWire(t *testing.T) {
	_, fab, _ := startCluster(t, 1)

	// Fetch of an array the worker never saw.
	dst := kernels.NewBuffer(memmodel.Float32, 8)
	_, err := fab.MoveArray(dag.ArrayID(999), 1, cluster.ControllerID, 0, nil, dst)
	if !errors.Is(err, core.ErrArrayNotFound) {
		t.Fatalf("fetch of unknown array: %v, want core.ErrArrayNotFound", err)
	}
	// Send to an array the worker never saw.
	src := kernels.NewBuffer(memmodel.Float32, 8)
	_, err = fab.MoveArray(dag.ArrayID(998), cluster.ControllerID, 1, 0, src, nil)
	if !errors.Is(err, core.ErrArrayNotFound) {
		t.Fatalf("send to unknown array: %v, want core.ErrArrayNotFound", err)
	}
	// Kernel that does not compile.
	if err := fab.BuildKernel("this is not CUDA(", ""); !errors.Is(err, core.ErrKernelCompile) {
		t.Fatalf("garbage kernel: %v, want core.ErrKernelCompile", err)
	}
	// Allocation beyond the worker's 180 GiB host memory. The simulated
	// allocator rejects it before any real buffer is allocated.
	err = fab.EnsureArray(1, grcuda.ArrayMeta{ID: 5, Kind: memmodel.Float64, Len: 1 << 36})
	if !errors.Is(err, core.ErrOOM) {
		t.Fatalf("oversize ensure-array: %v, want core.ErrOOM", err)
	}
}

// The same sentinels must survive the legacy gob wire (Response.Code rides
// both encodings).
func TestTypedErrorsAcrossGobWire(t *testing.T) {
	w, err := NewWorkerServer("127.0.0.1:0", testSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = w.Close() })
	fab, err := DialWith([]string{w.Addr()}, DialOptions{Wire: WireGob})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fab.Close() })
	dst := kernels.NewBuffer(memmodel.Float32, 8)
	if _, err := fab.MoveArray(dag.ArrayID(999), 1, cluster.ControllerID, 0, nil, dst); !errors.Is(err, core.ErrArrayNotFound) {
		t.Fatalf("fetch of unknown array over gob: %v, want core.ErrArrayNotFound", err)
	}
	if err := fab.BuildKernel("garbage(", ""); !errors.Is(err, core.ErrKernelCompile) {
		t.Fatalf("garbage kernel over gob: %v, want core.ErrKernelCompile", err)
	}
}

// The gob wire stays a fully working deployment mode for one release:
// an end-to-end workload over WireGob matches expectations bit-exactly.
func TestGobWireEndToEnd(t *testing.T) {
	var workers []*WorkerServer
	var addrs []string
	for i := 0; i < 2; i++ {
		w, err := NewWorkerServer("127.0.0.1:0", testSpec(), nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = w.Close() })
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
	}
	fab, err := DialWith(addrs, DialOptions{Wire: WireGob})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fab.Close() })
	if fab.Wire() != WireGob {
		t.Fatalf("wire = %v, want gob", fab.Wire())
	}
	ctl := core.NewController(fab, policy.NewRoundRobin(), core.Options{Numeric: true})

	const n = int64(256)
	x, _ := ctl.NewArray(memmodel.Float32, n)
	y, _ := ctl.NewArray(memmodel.Float32, n)
	for i := 0; i < int(n); i++ {
		x.Buf.Set(i, float64(i))
		y.Buf.Set(i, 1)
	}
	if _, err := ctl.HostWrite(x.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.HostWrite(y.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Launch(core.Invocation{Kernel: "axpy",
		Args: []core.ArgRef{core.ArrRef(y.ID), core.ArrRef(x.ID),
			core.ScalarRef(2), core.ScalarRef(float64(n))}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.HostRead(y.ID); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < int(n); i++ {
		if want := 1 + 2*float64(i); y.Buf.At(i) != want {
			t.Fatalf("y[%d] = %v, want %v", i, y.Buf.At(i), want)
		}
	}
	// P2P over gob still works too.
	if _, err := ctl.Launch(core.Invocation{Kernel: "relu",
		Args: []core.ArgRef{core.ArrRef(y.ID), core.ScalarRef(float64(n))}}); err != nil {
		t.Fatal(err)
	}
	_ = workers
}

// Concurrent transfers of different arrays interleave on one bulk channel
// and arrive bit-exact in both directions.
func TestConcurrentBulkTransfersInterleave(t *testing.T) {
	w, err := NewWorkerServer("127.0.0.1:0", testSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = w.Close() })
	// A small chunk size forces many chunks per transfer, maximizing
	// interleaving on the shared channel.
	fab, err := DialWith([]string{w.Addr()}, DialOptions{ChunkBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fab.Close() })

	const arrays = 6
	const elems = 1 << 16 // 256 KiB each at float32: 32 chunks
	srcs := make([]*kernels.Buffer, arrays)
	for a := 0; a < arrays; a++ {
		id := dag.ArrayID(a + 1)
		if err := fab.EnsureArray(1, grcuda.ArrayMeta{ID: id, Kind: memmodel.Float32, Len: elems}); err != nil {
			t.Fatal(err)
		}
		srcs[a] = kernels.NewBuffer(memmodel.Float32, elems)
		for i := 0; i < elems; i++ {
			srcs[a].Set(i, float64((a+1)*1000+i%997))
		}
	}
	// Ship all arrays concurrently.
	var wg sync.WaitGroup
	errs := make([]error, arrays)
	for a := 0; a < arrays; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			_, errs[a] = fab.MoveArray(dag.ArrayID(a+1), cluster.ControllerID, 1, 0, srcs[a], nil)
		}(a)
	}
	wg.Wait()
	for a, err := range errs {
		if err != nil {
			t.Fatalf("send array %d: %v", a+1, err)
		}
	}
	// Fetch them all back concurrently into fresh buffers.
	dsts := make([]*kernels.Buffer, arrays)
	for a := 0; a < arrays; a++ {
		dsts[a] = kernels.NewBuffer(memmodel.Float32, elems)
	}
	for a := 0; a < arrays; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			_, errs[a] = fab.MoveArray(dag.ArrayID(a+1), 1, cluster.ControllerID, 0, nil, dsts[a])
		}(a)
	}
	wg.Wait()
	for a, err := range errs {
		if err != nil {
			t.Fatalf("fetch array %d: %v", a+1, err)
		}
	}
	for a := 0; a < arrays; a++ {
		if d := srcs[a].MaxAbsDiff(dsts[a]); d != 0 {
			t.Fatalf("array %d: max abs diff %v after round trip", a+1, d)
		}
	}
}
