package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"grout/internal/core"
	"grout/internal/gpusim"
	"grout/internal/grcuda"
	"grout/internal/kernels"
)

// WorkerServer hosts a GrCUDA runtime behind a TCP listener: the Worker
// half of the paper's Figure 3. It executes kernels numerically and keeps
// its embedded UVM simulator's accounting for statistics.
//
// One listener serves both wires: framed connections open with the
// protocol hello (control or bulk channel), legacy gob connections don't —
// the server sniffs the first bytes and dispatches accordingly, so mixed
// fleets keep working during the gob deprecation release.
type WorkerServer struct {
	mu        sync.Mutex
	rt        *grcuda.Runtime
	listener  net.Listener
	log       *log.Logger
	done      chan struct{}
	closed    bool
	active    map[io.Closer]struct{}
	pushChunk int
	// P2P push deadlines (resolved from ServerOptions).
	dialTimeout  time.Duration
	chunkTimeout time.Duration
}

// ServerOptions tune a WorkerServer beyond the node spec.
type ServerOptions struct {
	// ChunkBytes is the chunk size for outgoing bulk streams (P2P pushes
	// and fetch responses). 0 means DefaultChunkBytes.
	ChunkBytes int
	// DialTimeout bounds the worker→worker dial a P2P push opens (zero
	// means DefaultDialTimeout, negative disables) — previously this dial
	// had no deadline, so a peer that died between the controller's
	// command and the push hung the pushing worker.
	DialTimeout time.Duration
	// ChunkTimeout bounds each outgoing P2P chunk write (zero means
	// DefaultChunkTimeout, negative disables).
	ChunkTimeout time.Duration
	// Prefetch and Evict select the node's UVM memory policies by name
	// (gpusim.PrefetchPolicyNames / EvictionPolicyNames). Empty keeps the
	// defaults; unknown names fail server construction rather than
	// silently falling back to the baseline.
	Prefetch string
	Evict    string
}

// NewWorkerServer creates a worker over the given simulated node spec,
// listening on addr ("host:0" picks a free port). logger may be nil.
func NewWorkerServer(addr string, spec gpusim.NodeSpec, logger *log.Logger) (*WorkerServer, error) {
	return NewWorkerServerOpts(addr, spec, logger, ServerOptions{})
}

// NewWorkerServerOpts is NewWorkerServer with explicit options.
func NewWorkerServerOpts(addr string, spec gpusim.NodeSpec, logger *log.Logger, opts ServerOptions) (*WorkerServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	if logger == nil {
		logger = log.New(discard{}, "", 0)
	}
	node := gpusim.NewNode(spec)
	if opts.Prefetch != "" || opts.Evict != "" {
		if err := node.UseMemoryPolicies(opts.Prefetch, opts.Evict); err != nil {
			_ = ln.Close()
			return nil, err
		}
	}
	w := &WorkerServer{
		rt:           grcuda.NewRuntime(node, kernels.StdRegistry(), grcuda.Options{ExecuteNumeric: true}),
		listener:     ln,
		log:          logger,
		done:         make(chan struct{}),
		active:       make(map[io.Closer]struct{}),
		pushChunk:    normalizeChunk(opts.ChunkBytes),
		dialTimeout:  pickTimeout(opts.DialTimeout, DefaultDialTimeout),
		chunkTimeout: pickTimeout(opts.ChunkTimeout, DefaultChunkTimeout),
	}
	go w.acceptLoop()
	return w, nil
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Addr returns the worker's listening address.
func (w *WorkerServer) Addr() string { return w.listener.Addr().String() }

// Runtime exposes the embedded runtime (tests).
func (w *WorkerServer) Runtime() *grcuda.Runtime { return w.rt }

// Close stops the server and drops every established connection.
func (w *WorkerServer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	close(w.done)
	conns := make([]io.Closer, 0, len(w.active))
	for c := range w.active {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
	return w.listener.Close()
}

// track registers a live connection for teardown on Close; it reports
// false when the server is already closed.
func (w *WorkerServer) track(c io.Closer) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return false
	}
	w.active[c] = struct{}{}
	return true
}

func (w *WorkerServer) untrack(c io.Closer) {
	w.mu.Lock()
	delete(w.active, c)
	w.mu.Unlock()
}

func (w *WorkerServer) acceptLoop() {
	for {
		raw, err := w.listener.Accept()
		if err != nil {
			select {
			case <-w.done:
				return
			default:
				w.log.Printf("worker accept: %v", err)
				return
			}
		}
		go w.sniffAndServe(raw)
	}
}

// sniffAndServe decides the wire by peeking the connection's first bytes:
// the framed hello magic selects the framed channels, anything else falls
// back to the legacy gob loop.
func (w *WorkerServer) sniffAndServe(raw net.Conn) {
	br := bufio.NewReaderSize(raw, 64<<10)
	magic, err := br.Peek(len(helloMagic))
	if err != nil {
		_ = raw.Close()
		return
	}
	if string(magic) != helloMagic {
		w.serveGob(raw, br)
		return
	}
	var hello [helloLen]byte
	if _, err := io.ReadFull(br, hello[:]); err != nil {
		_ = raw.Close()
		return
	}
	fc := newFramedConn(raw, br)
	switch hello[4] {
	case helloControl:
		w.serveControl(fc)
	case helloBulk:
		w.serveBulk(fc)
	default:
		w.log.Printf("worker: unknown channel %d in hello", hello[4])
		_ = fc.close()
	}
}

// --- legacy gob serving ----------------------------------------------------

// serveGob handles one legacy gob connection until it closes.
func (w *WorkerServer) serveGob(raw net.Conn, br *bufio.Reader) {
	c := newConnReader(br, raw)
	if !w.track(c) {
		_ = c.close()
		return
	}
	defer func() {
		w.untrack(c)
		_ = c.close()
	}()
	for {
		req, err := c.recv()
		if err != nil {
			return // connection closed
		}
		resp := w.handle(req)
		if err := c.reply(resp); err != nil {
			w.log.Printf("worker reply: %v", err)
			return
		}
		if req.Kind == MsgShutdown {
			_ = w.Close()
			return
		}
	}
}

// --- framed control serving ------------------------------------------------

// serveControl handles one framed control channel: strict request frame →
// response frame, in order. Bulk kinds are rejected here — array payloads
// belong on the bulk channel.
func (w *WorkerServer) serveControl(fc *framedConn) {
	if !w.track(fc) {
		_ = fc.close()
		return
	}
	defer func() {
		w.untrack(fc)
		_ = fc.close()
	}()
	// req is this connection's decode scratch: one Request reused across
	// messages instead of an allocation per frame (parseRequestInto resets
	// it; handling is synchronous, so nothing outlives the iteration).
	var req Request
	for {
		h, err := fc.readHeader()
		if err != nil {
			return // connection closed (or corrupt stream)
		}
		if h.ftype != frameRequest {
			w.log.Printf("worker control: unexpected frame type %d", h.ftype)
			return
		}
		bp, err := fc.readPayload(h.n)
		if err != nil {
			return
		}
		perr := parseRequestInto(*bp, &req)
		putFrameBuf(bp)
		if perr != nil {
			w.log.Printf("worker control: %v", perr)
			return
		}
		var resp *Response
		switch req.Kind {
		case MsgReceiveArray, MsgFetchArray, MsgPushTo:
			resp = &Response{}
			resp.setErr(fmt.Errorf("bulk operation %v on control channel", req.Kind))
		default:
			resp = w.handle(&req)
		}
		if err := fc.sendResponse(h.reqID, resp); err != nil {
			w.log.Printf("worker reply: %v", err)
			return
		}
		if req.Kind == MsgShutdown {
			_ = w.Close()
			return
		}
	}
}

// --- framed bulk serving ---------------------------------------------------

// inflightRecv tracks one chunked array receive on a bulk channel.
type inflightRecv struct {
	buf   *kernels.Buffer
	got   int
	total int
}

// serveBulk handles one framed bulk channel: receive streams land chunk
// by chunk directly in array storage; fetches and P2P pushes run in their
// own goroutines so a slow peer never stalls the channel's reader, and
// concurrent operations interleave by request ID.
func (w *WorkerServer) serveBulk(fc *framedConn) {
	if !w.track(fc) {
		_ = fc.close()
		return
	}
	defer func() {
		w.untrack(fc)
		_ = fc.close()
	}()
	// recv is owned by this goroutine; no lock needed.
	recv := make(map[uint64]*inflightRecv)
	// req is this connection's decode scratch (see serveControl); paths
	// that outlive the loop iteration (fetch/push goroutines) copy it.
	var req Request
	for {
		h, err := fc.readHeader()
		if err != nil {
			return
		}
		switch h.ftype {
		case frameRequest:
			bp, err := fc.readPayload(h.n)
			if err != nil {
				return
			}
			perr := parseRequestInto(*bp, &req)
			putFrameBuf(bp)
			if perr != nil {
				w.log.Printf("worker bulk: %v", perr)
				return
			}
			if !w.bulkRequest(fc, h.reqID, &req, recv) {
				return
			}
		case frameChunk:
			if err := w.bulkChunk(fc, h, recv); err != nil {
				w.log.Printf("worker bulk: %v", err)
				return
			}
		default:
			w.log.Printf("worker bulk: unexpected frame type %d", h.ftype)
			return
		}
	}
}

// bulkRequest opens one bulk operation; it reports false when the channel
// must close.
func (w *WorkerServer) bulkRequest(fc *framedConn, reqID uint64, req *Request,
	recv map[uint64]*inflightRecv) bool {
	switch req.Kind {
	case MsgReceiveArray:
		st, err := w.beginReceive(req)
		if err != nil {
			resp := &Response{}
			resp.setErr(err)
			return fc.sendResponse(reqID, resp) == nil
		}
		if st.total == 0 {
			// Zero-length array: nothing will stream.
			return fc.sendResponse(reqID, &Response{}) == nil
		}
		recv[reqID] = st
		return true
	case MsgFetchArray:
		// req is the serve loop's scratch and will be overwritten by the
		// next frame; the goroutine gets its own shallow copy (safe: every
		// parse allocates fresh slice fields, never aliases prior ones).
		r := *req
		go w.serveFetch(fc, reqID, &r)
		return true
	case MsgPushTo:
		r := *req
		go w.servePush(fc, reqID, &r)
		return true
	case MsgPing:
		// Harmless on bulk (used by channel health probes).
		return fc.sendResponse(reqID, &Response{}) == nil
	default:
		resp := &Response{}
		resp.setErr(fmt.Errorf("request %v not valid on bulk channel", req.Kind))
		return fc.sendResponse(reqID, resp) == nil
	}
}

// beginReceive validates an incoming array stream and invalidates stale
// device pages; chunks will land directly in the array's host buffer.
func (w *WorkerServer) beginReceive(req *Request) (*inflightRecv, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	arr := w.rt.Array(req.ArrayID)
	if arr == nil {
		return nil, fmt.Errorf("receive of unknown array %d: %w", req.ArrayID, core.ErrArrayNotFound)
	}
	if err := w.rt.Node().Invalidate(arr.Alloc); err != nil {
		return nil, err
	}
	// The sender names how many bytes it will stream; a mismatch against
	// the local replica is a protocol-level bug, not data to truncate.
	var sent int
	if req.Meta.Len > 0 {
		sent = int(grcuda.ArrayMeta{Kind: req.Meta.Kind, Len: req.Meta.Len}.Bytes())
		if local := int(arr.Bytes()); sent != local {
			return nil, fmt.Errorf("receive of array %d: %d sent bytes vs %d local", req.ArrayID, sent, local)
		}
	}
	return &inflightRecv{buf: arr.Buf, total: sent}, nil
}

// bulkChunk applies one incoming chunk; unknown request IDs (an aborted
// or rejected transfer) are discarded.
func (w *WorkerServer) bulkChunk(fc *framedConn, h frameHeader, recv map[uint64]*inflightRecv) error {
	if h.n < chunkOffsetLen {
		return fmt.Errorf("chunk frame of %d bytes", h.n)
	}
	off, err := fc.readChunkOffset()
	if err != nil {
		return err
	}
	n := h.n - chunkOffsetLen
	st, ok := recv[h.reqID]
	if !ok || st.buf == nil {
		return fc.discardPayload(n)
	}
	if _, err := st.buf.RawSpan(off, n); err != nil {
		return err // protocol violation: kill the channel
	}
	// Pull the payload into pooled scratch without the runtime lock (the
	// socket read may block on a slow sender), then land it under the
	// lock: launches on other arrays interleave between chunks, and the
	// lock edge orders the buffer write against later launches reading it.
	bp, err := fc.readPayload(n)
	if err != nil {
		return err
	}
	w.mu.Lock()
	err = st.buf.SetRawBytes(off, *bp)
	w.mu.Unlock()
	putFrameBuf(bp)
	if err != nil {
		return err
	}
	st.got += n
	if st.got >= st.total {
		delete(recv, h.reqID)
		return fc.sendResponse(h.reqID, &Response{})
	}
	return nil
}

// serveFetch streams an array's contents back to the requester in chunks,
// then the response. Runs in its own goroutine; chunk writes interleave
// with other operations under the connection's write mutex.
func (w *WorkerServer) serveFetch(fc *framedConn, reqID uint64, req *Request) {
	w.mu.Lock()
	arr := w.rt.Array(req.ArrayID)
	if arr == nil {
		w.mu.Unlock()
		resp := &Response{}
		resp.setErr(fmt.Errorf("fetch of unknown array %d: %w", req.ArrayID, core.ErrArrayNotFound))
		_ = fc.sendResponse(reqID, resp)
		return
	}
	if _, err := w.rt.Node().FlushForSend(arr.Alloc, w.rt.Elapsed()); err != nil {
		w.mu.Unlock()
		resp := &Response{}
		resp.setErr(err)
		_ = fc.sendResponse(reqID, resp)
		return
	}
	buf := arr.Buf
	total := int(buf.Bytes())
	w.mu.Unlock()

	// Each chunk is snapshotted into pooled scratch under the runtime lock
	// (ordering the reads against concurrent launches), then written
	// without it so a slow peer never stalls kernel execution.
	bp := getFrameBuf()
	defer putFrameBuf(bp)
	for off := 0; off < total; off += w.pushChunk {
		end := off + w.pushChunk
		if end > total {
			end = total
		}
		n := end - off
		if cap(*bp) < n {
			*bp = make([]byte, n)
		}
		*bp = (*bp)[:n]
		w.mu.Lock()
		span, err := buf.RawSpan(off, n)
		if err == nil {
			copy(*bp, span)
		}
		w.mu.Unlock()
		if err != nil {
			resp := &Response{}
			resp.setErr(err)
			_ = fc.sendResponse(reqID, resp)
			return
		}
		if err := fc.writeChunk(reqID, uint64(off), *bp); err != nil {
			return // channel dead; requester sees the broken conn
		}
	}
	_ = fc.sendResponse(reqID, &Response{})
}

// servePush ships an array to a peer worker over a fresh framed bulk
// connection (the peer sniffs the hello like any client). Pushes to
// different peers run concurrently.
func (w *WorkerServer) servePush(fc *framedConn, reqID uint64, req *Request) {
	resp := &Response{}
	resp.setErr(w.pushTo(req))
	_ = fc.sendResponse(reqID, resp)
}

// handle executes one request under the runtime lock. P2P pushes are the
// exception: the blocking round trip to the peer happens outside the lock
// (a snapshot is taken under it), otherwise a cycle of concurrent pushes
// between workers would deadlock — each one holding its runtime lock while
// the peer's receive handler waits for that same lock.
func (w *WorkerServer) handle(req *Request) *Response {
	resp := &Response{}
	if req.Kind == MsgPushTo {
		resp.setErr(w.pushTo(req))
		return resp
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	resp.setErr(w.apply(req, resp))
	return resp
}

// pushTo ships an array to a peer worker: flush and snapshot under the
// runtime lock, then perform the network round trip without it.
func (w *WorkerServer) pushTo(req *Request) error {
	w.mu.Lock()
	arr := w.rt.Array(req.ArrayID)
	if arr == nil {
		w.mu.Unlock()
		return fmt.Errorf("push of unknown array %d: %w", req.ArrayID, core.ErrArrayNotFound)
	}
	if _, err := w.rt.Node().FlushForSend(arr.Alloc, w.rt.Elapsed()); err != nil {
		w.mu.Unlock()
		return err
	}
	snap := arr.Buf.Clone()
	meta := arr.ArrayMeta
	w.mu.Unlock()

	fc, err := dialFramed(req.PeerAddr, helloBulk, w.dialTimeout)
	if err != nil {
		return fmt.Errorf("p2p dial %s: %w", req.PeerAddr, err)
	}
	fc.writeTimeout = w.chunkTimeout
	bc := newBulkClient(fc, w.pushChunk)
	defer bc.close()
	return bc.receiveArray(req.ArrayID, meta, snap)
}

func (w *WorkerServer) apply(req *Request, resp *Response) error {
	switch req.Kind {
	case MsgPing, MsgShutdown:
		return nil

	case MsgEnsureArray:
		if w.rt.Array(req.Meta.ID) != nil {
			return nil
		}
		_, err := w.rt.NewArrayWithID(req.Meta.ID, req.Meta.Kind, req.Meta.Len)
		if err != nil && errors.Is(err, gpusim.ErrHostMemoryExhausted) {
			err = fmt.Errorf("%w: %v", core.ErrOOM, err)
		}
		return err

	case MsgReceiveArray:
		// Legacy gob path: the payload rides inline in req.Data.
		arr := w.rt.Array(req.ArrayID)
		if arr == nil {
			return fmt.Errorf("receive of unknown array %d: %w", req.ArrayID, core.ErrArrayNotFound)
		}
		if err := w.rt.Node().Invalidate(arr.Alloc); err != nil {
			return err
		}
		if req.Data != nil && arr.Buf != nil {
			n := arr.Buf.Len()
			if req.Data.Len() < n {
				n = req.Data.Len()
			}
			for i := 0; i < n; i++ {
				arr.Buf.Set(i, req.Data.At(i))
			}
		}
		return nil

	case MsgFetchArray:
		arr := w.rt.Array(req.ArrayID)
		if arr == nil {
			return fmt.Errorf("fetch of unknown array %d: %w", req.ArrayID, core.ErrArrayNotFound)
		}
		if _, err := w.rt.Node().FlushForSend(arr.Alloc, w.rt.Elapsed()); err != nil {
			return err
		}
		resp.Data = arr.Buf
		return nil

	case MsgLaunch:
		vals := make([]grcuda.Value, len(req.Inv.Args))
		for i, a := range req.Inv.Args {
			if a.IsArray {
				arr := w.rt.Array(a.Array)
				if arr == nil {
					return fmt.Errorf("launch references unknown array %d: %w", a.Array, core.ErrArrayNotFound)
				}
				vals[i] = grcuda.ArrValue(arr)
			} else {
				vals[i] = grcuda.ScalarValue(a.Scalar)
			}
		}
		_, err := w.rt.Submit(grcuda.Invocation{
			Kernel: req.Inv.Kernel, Grid: req.Inv.Grid, Block: req.Inv.Block, Args: vals,
		}, 0)
		return err

	case MsgBuildKernel:
		// The runtime's BuildKernel resolves repeated sources through the
		// registry source cache and minicuda's compiled-program cache, so
		// per-run re-broadcasts of the same kernel do no front-end work.
		if _, err := w.rt.BuildKernel(req.Src, req.Signature); err != nil {
			return fmt.Errorf("%w: %v", core.ErrKernelCompile, err)
		}
		return nil

	case MsgFreeArray:
		if w.rt.Array(req.ArrayID) == nil {
			return nil
		}
		return w.rt.FreeArray(req.ArrayID)

	case MsgPushTo:
		// Handled without the runtime lock in pushTo (see handle).
		return errors.New("push-to must not reach apply")

	case MsgStats:
		resp.Kernels = len(w.rt.Records())
		resp.Arrays = w.rt.ArrayCount()
		resp.Elapsed = int64(w.rt.Elapsed())
		return nil
	}
	return errors.New("unknown request kind")
}
