package transport

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"

	"grout/internal/gpusim"
	"grout/internal/grcuda"
	"grout/internal/kernels"
	"grout/internal/minicuda"
)

// WorkerServer hosts a GrCUDA runtime behind a TCP listener: the Worker
// half of the paper's Figure 3. It executes kernels numerically and keeps
// its embedded UVM simulator's accounting for statistics.
type WorkerServer struct {
	mu       sync.Mutex
	rt       *grcuda.Runtime
	listener net.Listener
	log      *log.Logger
	done     chan struct{}
	closed   bool
	active   map[*conn]struct{}
}

// NewWorkerServer creates a worker over the given simulated node spec,
// listening on addr ("host:0" picks a free port). logger may be nil.
func NewWorkerServer(addr string, spec gpusim.NodeSpec, logger *log.Logger) (*WorkerServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	if logger == nil {
		logger = log.New(discard{}, "", 0)
	}
	w := &WorkerServer{
		rt:       grcuda.NewRuntime(gpusim.NewNode(spec), kernels.StdRegistry(), grcuda.Options{ExecuteNumeric: true}),
		listener: ln,
		log:      logger,
		done:     make(chan struct{}),
		active:   make(map[*conn]struct{}),
	}
	go w.acceptLoop()
	return w, nil
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Addr returns the worker's listening address.
func (w *WorkerServer) Addr() string { return w.listener.Addr().String() }

// Runtime exposes the embedded runtime (tests).
func (w *WorkerServer) Runtime() *grcuda.Runtime { return w.rt }

// Close stops the server and drops every established connection.
func (w *WorkerServer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	close(w.done)
	conns := make([]*conn, 0, len(w.active))
	for c := range w.active {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	for _, c := range conns {
		_ = c.close()
	}
	return w.listener.Close()
}

func (w *WorkerServer) acceptLoop() {
	for {
		raw, err := w.listener.Accept()
		if err != nil {
			select {
			case <-w.done:
				return
			default:
				w.log.Printf("worker accept: %v", err)
				return
			}
		}
		c := newConn(raw)
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			_ = c.close()
			return
		}
		w.active[c] = struct{}{}
		w.mu.Unlock()
		go w.serve(c)
	}
}

// serve handles one connection until it closes.
func (w *WorkerServer) serve(c *conn) {
	defer func() {
		w.mu.Lock()
		delete(w.active, c)
		w.mu.Unlock()
		_ = c.close()
	}()
	for {
		req, err := c.recv()
		if err != nil {
			return // connection closed
		}
		resp := w.handle(req)
		if err := c.reply(resp); err != nil {
			w.log.Printf("worker reply: %v", err)
			return
		}
		if req.Kind == MsgShutdown {
			_ = w.Close()
			return
		}
	}
}

// handle executes one request under the runtime lock. P2P pushes are the
// exception: the blocking round trip to the peer happens outside the lock
// (a snapshot is taken under it), otherwise a cycle of concurrent pushes
// between workers would deadlock — each one holding its runtime lock while
// the peer's receive handler waits for that same lock.
func (w *WorkerServer) handle(req *Request) *Response {
	resp := &Response{}
	if req.Kind == MsgPushTo {
		if err := w.pushTo(req); err != nil {
			resp.Err = err.Error()
		}
		return resp
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.apply(req, resp); err != nil {
		resp.Err = err.Error()
	}
	return resp
}

// pushTo ships an array to a peer worker: flush and snapshot under the
// runtime lock, then perform the network round trip without it.
func (w *WorkerServer) pushTo(req *Request) error {
	w.mu.Lock()
	arr := w.rt.Array(req.ArrayID)
	if arr == nil {
		w.mu.Unlock()
		return fmt.Errorf("push of unknown array %d", req.ArrayID)
	}
	if _, err := w.rt.Node().FlushForSend(arr.Alloc, w.rt.Elapsed()); err != nil {
		w.mu.Unlock()
		return err
	}
	snap := kernels.NewBuffer(arr.Buf.Kind, arr.Buf.Len())
	for i := 0; i < arr.Buf.Len(); i++ {
		snap.Set(i, arr.Buf.At(i))
	}
	w.mu.Unlock()

	peer, err := net.Dial("tcp", req.PeerAddr)
	if err != nil {
		return fmt.Errorf("p2p dial %s: %w", req.PeerAddr, err)
	}
	pc := newConn(peer)
	defer pc.close()
	_, err = pc.call(&Request{
		Kind:    MsgReceiveArray,
		ArrayID: req.ArrayID,
		Data:    snap,
	})
	return err
}

func (w *WorkerServer) apply(req *Request, resp *Response) error {
	switch req.Kind {
	case MsgPing, MsgShutdown:
		return nil

	case MsgEnsureArray:
		if w.rt.Array(req.Meta.ID) != nil {
			return nil
		}
		_, err := w.rt.NewArrayWithID(req.Meta.ID, req.Meta.Kind, req.Meta.Len)
		return err

	case MsgReceiveArray:
		arr := w.rt.Array(req.ArrayID)
		if arr == nil {
			return fmt.Errorf("receive of unknown array %d", req.ArrayID)
		}
		if err := w.rt.Node().Invalidate(arr.Alloc); err != nil {
			return err
		}
		if req.Data != nil && arr.Buf != nil {
			n := arr.Buf.Len()
			if req.Data.Len() < n {
				n = req.Data.Len()
			}
			for i := 0; i < n; i++ {
				arr.Buf.Set(i, req.Data.At(i))
			}
		}
		return nil

	case MsgFetchArray:
		arr := w.rt.Array(req.ArrayID)
		if arr == nil {
			return fmt.Errorf("fetch of unknown array %d", req.ArrayID)
		}
		if _, err := w.rt.Node().FlushForSend(arr.Alloc, w.rt.Elapsed()); err != nil {
			return err
		}
		resp.Data = arr.Buf
		return nil

	case MsgLaunch:
		vals := make([]grcuda.Value, len(req.Inv.Args))
		for i, a := range req.Inv.Args {
			if a.IsArray {
				arr := w.rt.Array(a.Array)
				if arr == nil {
					return fmt.Errorf("launch references unknown array %d", a.Array)
				}
				vals[i] = grcuda.ArrValue(arr)
			} else {
				vals[i] = grcuda.ScalarValue(a.Scalar)
			}
		}
		_, err := w.rt.Submit(grcuda.Invocation{
			Kernel: req.Inv.Kernel, Grid: req.Inv.Grid, Block: req.Inv.Block, Args: vals,
		}, 0)
		return err

	case MsgBuildKernel:
		def, err := minicuda.Compile(req.Src, req.Signature)
		if err != nil {
			return err
		}
		if _, exists := w.rt.Registry().Lookup(def.Name); exists {
			return nil
		}
		return w.rt.Registry().Register(def)

	case MsgFreeArray:
		if w.rt.Array(req.ArrayID) == nil {
			return nil
		}
		return w.rt.FreeArray(req.ArrayID)

	case MsgPushTo:
		// Handled without the runtime lock in pushTo (see handle).
		return errors.New("push-to must not reach apply")

	case MsgStats:
		resp.Kernels = len(w.rt.Records())
		resp.Arrays = w.rt.ArrayCount()
		resp.Elapsed = int64(w.rt.Elapsed())
		return nil
	}
	return errors.New("unknown request kind")
}
