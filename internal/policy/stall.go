package policy

import (
	"grout/internal/cluster"
	"grout/internal/sim"
)

// StallAware is an optional Policy extension: a policy that returns true
// from NeedsStallView has NodeInfo.PredictedStall filled by the
// controller (an extra fabric query per candidate), pricing what UVM
// oversubscription would do to the kernel on each worker. Policies that
// do not implement the interface never pay for the prediction.
type StallAware interface {
	NeedsStallView() bool
}

// MinStallTime assigns the CE to the node minimizing transfer time plus
// predicted UVM migration stall. Unlike min-transfer-time it ranks every
// candidate, with no viability gate: the node holding the CE's data is
// exactly the one an oversubscription storm makes wrong, and a gate keyed
// on UpToDate would exclude the idle data-less worker the policy exists
// to steer toward. The transfer term already penalizes data-less nodes in
// proportion to what moving the data costs — the stall term is what the
// paper's oversubscription cliff adds on top.
type MinStallTime struct{}

// NewMinStallTime builds the policy.
func NewMinStallTime() *MinStallTime { return &MinStallTime{} }

// Name implements Policy.
func (p *MinStallTime) Name() string { return "min-stall-time" }

// NeedsDataView implements Policy.
func (p *MinStallTime) NeedsDataView() bool { return true }

// NeedsStallView implements StallAware.
func (p *MinStallTime) NeedsStallView() bool { return true }

// Assign implements Policy.
func (p *MinStallTime) Assign(req Request) cluster.NodeID {
	best := -1
	var bestCost sim.VirtualTime
	for i, n := range req.Nodes {
		cost := n.TransferTime + n.PredictedStall
		if best == -1 || cost < bestCost ||
			(cost == bestCost && n.ID < req.Nodes[best].ID) {
			best = i
			bestCost = cost
		}
	}
	return req.Nodes[best].ID
}

// AssignBatch implements BatchAssigner: stateless, so the batch is just
// the per-request scan against the window's frozen snapshot.
func (p *MinStallTime) AssignBatch(reqs []Request) []cluster.NodeID {
	out := make([]cluster.NodeID, len(reqs))
	for i, req := range reqs {
		out[i] = p.Assign(req)
	}
	return out
}
