package policy

import "grout/internal/cluster"

// BatchAssigner is an optional Policy extension used by the controller's
// lookahead optimizer window (DESIGN.md §5.6): place a whole window of
// CEs in one call instead of one Assign per CE.
//
// Snapshot contract: every request in the batch is built against the
// same frozen data-location view — the membership state as of the start
// of the window. Implementations must not assume that an earlier
// request's placement (or the write collapse it will cause) is visible
// in a later request's NodeInfo; the controller applies all membership
// predictions after the batch returns, in window order. This is what
// lets the per-array transfer-estimate vectors be computed once per
// window: the view cannot change mid-batch.
//
// The returned slice has one worker per request, in order. Policies
// whose per-request state advances (round-robin cursors) must advance it
// exactly as len(reqs) sequential Assign calls would, so batch and
// per-CE admission interleave consistently.
type BatchAssigner interface {
	AssignBatch(reqs []Request) []cluster.NodeID
}

// AssignBatch implements BatchAssigner: the min-transfer-time scan runs
// per request, but the expensive part — the data views — was built once
// against the window snapshot by the caller.
func (p *MinTransferTime) AssignBatch(reqs []Request) []cluster.NodeID {
	out := make([]cluster.NodeID, len(reqs))
	for i, req := range reqs {
		out[i] = p.Assign(req)
	}
	return out
}

// AssignBatch implements BatchAssigner for min-transfer-size.
func (p *MinTransferSize) AssignBatch(reqs []Request) []cluster.NodeID {
	out := make([]cluster.NodeID, len(reqs))
	for i, req := range reqs {
		out[i] = p.Assign(req)
	}
	return out
}
