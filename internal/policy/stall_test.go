package policy

import (
	"testing"

	"grout/internal/memmodel"
	"grout/internal/sim"
)

func TestMinStallTimeSteersAwayFromStall(t *testing.T) {
	p := NewMinStallTime()
	// Node 1 holds all the data (zero transfer) but is oversubscribed:
	// its predicted migration stall dwarfs shipping the data to idle
	// node 2. Pure transfer-time cost would pick node 1.
	ns := []NodeInfo{
		{ID: 1, UpToDate: 8 * memmodel.GiB, TransferTime: 0,
			PredictedStall: sim.VirtualTime(900e9)},
		{ID: 2, UpToDate: 0, Transfer: 8 * memmodel.GiB,
			TransferTime: sim.VirtualTime(7e9), PredictedStall: 0},
	}
	if got := p.Assign(req(ns, 8*memmodel.GiB)); got != 2 {
		t.Fatalf("Assign = %v, want steering to node 2", got)
	}
	if mtt := NewMinTransferTime(Medium).Assign(req(ns, 8*memmodel.GiB)); mtt != 1 {
		t.Fatalf("min-transfer-time control pick = %v, want 1", mtt)
	}
}

func TestMinStallTimeBreaksTiesByTransferAndID(t *testing.T) {
	p := NewMinStallTime()
	// With no stall anywhere, it degrades to transfer-time ranking.
	ns := []NodeInfo{
		{ID: 1, TransferTime: sim.VirtualTime(5e9)},
		{ID: 2, TransferTime: sim.VirtualTime(2e9)},
		{ID: 3, TransferTime: sim.VirtualTime(2e9)},
	}
	if got := p.Assign(req(ns, memmodel.GiB)); got != 2 {
		t.Fatalf("Assign = %v, want lowest cost with ID tiebreak", got)
	}
}

func TestMinStallTimeBatchMatchesSequential(t *testing.T) {
	p := NewMinStallTime()
	mk := func(stall1 int64) Request {
		return req([]NodeInfo{
			{ID: 1, TransferTime: 0, PredictedStall: sim.VirtualTime(stall1)},
			{ID: 2, TransferTime: sim.VirtualTime(10e9)},
		}, memmodel.GiB)
	}
	reqs := []Request{mk(0), mk(100e9), mk(5e9)}
	batch := p.AssignBatch(reqs)
	for i, r := range reqs {
		if got := p.Assign(r); got != batch[i] {
			t.Fatalf("batch[%d] = %v, sequential = %v", i, batch[i], got)
		}
	}
}

func TestMinStallTimeRegistered(t *testing.T) {
	for _, name := range []string{"min-stall-time", "mst"} {
		p, err := New(name, nil, Medium)
		if err != nil || p.Name() != "min-stall-time" {
			t.Fatalf("New(%q) = %v, %v", name, p, err)
		}
		if !p.NeedsDataView() {
			t.Fatal("min-stall-time must need the data view")
		}
		sa, ok := p.(StallAware)
		if !ok || !sa.NeedsStallView() {
			t.Fatal("min-stall-time must request the stall view")
		}
		if _, ok := p.(BatchAssigner); !ok {
			t.Fatal("min-stall-time must support batched assignment")
		}
	}
	// The established policies must NOT request the expensive stall view.
	for _, p := range []Policy{NewMinTransferTime(Medium), NewMinTransferSize(Medium)} {
		if sa, ok := p.(StallAware); ok && sa.NeedsStallView() {
			t.Fatalf("%s unexpectedly requests stall view", p.Name())
		}
	}
}
