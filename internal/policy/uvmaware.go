package policy

import (
	"grout/internal/cluster"
	"grout/internal/memmodel"
)

// UVMAware is an extension beyond the paper's four policies, built exactly
// where §V-E points: "MV highlights the need for UVM-aware policies. [...]
// the exponential growth of the execution time given by the
// oversubscription mechanism of UVM reaches levels where a pure
// exploration policy reduces its impact by at least 100×."
//
// The policy keeps the locality-seeking behaviour of min-transfer-size but
// tracks how many bytes it has steered to each node and refuses to push a
// node's projected footprint past a pressure cap (a fraction of its device
// memory). Below the cap it exploits locality; at the cap it overflows to
// the least-loaded node — so the MV pile-on that storms one node under
// min-transfer-size (Figure 8) is structurally impossible.
type UVMAware struct {
	level ExplorationLevel
	// capBytes is the per-node assignment budget before the policy
	// stops exploiting locality there.
	capBytes memmodel.Bytes
	// assigned tracks bytes steered to each node (new data the node did
	// not already hold).
	assigned map[cluster.NodeID]memmodel.Bytes
	fallback RoundRobin
}

// NewUVMAware builds the policy. capBytes is the per-node footprint budget
// — typically the node's total device memory times the workload's
// tolerable oversubscription factor (e.g. 2 × 32 GiB for dense sweeps).
func NewUVMAware(level ExplorationLevel, capBytes memmodel.Bytes) *UVMAware {
	return &UVMAware{
		level:    level,
		capBytes: capBytes,
		assigned: make(map[cluster.NodeID]memmodel.Bytes),
	}
}

// Name implements Policy.
func (p *UVMAware) Name() string { return "uvm-aware" }

// NeedsDataView implements Policy.
func (p *UVMAware) NeedsDataView() bool { return true }

// Assign implements Policy.
func (p *UVMAware) Assign(req Request) cluster.NodeID {
	minViable, anyViable := viabilityFloor(req, p.level)
	best := -1
	for i, n := range req.Nodes {
		if !anyViable || float64(n.UpToDate) < minViable {
			continue
		}
		// The UVM guard: skip nodes whose projected footprint would
		// exceed the cap (unless the CE adds nothing new there).
		if p.capBytes > 0 && n.Transfer > 0 && p.assigned[n.ID]+n.Transfer > p.capBytes {
			continue
		}
		if best == -1 || n.Transfer < req.Nodes[best].Transfer ||
			(n.Transfer == req.Nodes[best].Transfer && n.ID < req.Nodes[best].ID) {
			best = i
		}
	}
	var chosen cluster.NodeID
	if best >= 0 {
		chosen = req.Nodes[best].ID
	} else {
		// Nothing viable under the cap: place on the least-loaded node
		// (pressure-spreading exploration).
		chosen = p.leastLoaded(req)
	}
	for _, n := range req.Nodes {
		if n.ID == chosen {
			p.assigned[chosen] += n.Transfer
			break
		}
	}
	return chosen
}

// leastLoaded picks the node with the smallest assigned footprint,
// preferring nodes whose projected footprint stays under the cap and
// breaking full ties round-robin to keep cold starts spread.
func (p *UVMAware) leastLoaded(req Request) cluster.NodeID {
	pick := func(candidates []NodeInfo) (cluster.NodeID, bool) {
		best := -1
		allEqual := true
		for i, n := range candidates {
			if p.assigned[n.ID] != p.assigned[candidates[0].ID] {
				allEqual = false
			}
			if best == -1 || p.assigned[n.ID] < p.assigned[candidates[best].ID] {
				best = i
			}
		}
		if best == -1 {
			return 0, false
		}
		if allEqual {
			return 0, false // let the caller round-robin
		}
		return candidates[best].ID, true
	}
	// First choice: nodes that stay under the cap.
	var underCap []NodeInfo
	for _, n := range req.Nodes {
		if p.capBytes <= 0 || p.assigned[n.ID]+n.Transfer <= p.capBytes {
			underCap = append(underCap, n)
		}
	}
	if len(underCap) > 0 {
		if id, ok := pick(underCap); ok {
			return id
		}
		// Equal loads among under-cap nodes: rotate over them.
		return p.fallback.Assign(Request{Nodes: underCap})
	}
	// Every node is saturated: least-loaded overall, ties round-robin.
	if id, ok := pick(req.Nodes); ok {
		return id
	}
	return p.fallback.Assign(req)
}

// AssignedBytes reports the bytes steered to a node so far (tests).
func (p *UVMAware) AssignedBytes(n cluster.NodeID) memmodel.Bytes { return p.assigned[n] }
