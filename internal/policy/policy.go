// Package policy implements GrOUT's inter-node scheduling policies
// (paper §IV-D): the offline round-robin and vector-step policies and the
// online, locality-aware min-transfer-size and min-transfer-time policies,
// the latter two gated by an exploration/exploitation threshold
// (paper §V-E: Low/Medium/High).
//
// A Policy sees a Request — the CE being scheduled plus, per candidate
// worker, how much of the CE's data is already up to date there and what
// moving the rest would cost — and returns the chosen worker. Policies are
// deliberately cheap: the paper's Figure 9 measures their per-CE overhead
// up to 256 nodes.
package policy

import (
	"fmt"
	"sort"
	"strings"

	"grout/internal/cluster"
	"grout/internal/dag"
	"grout/internal/memmodel"
	"grout/internal/sim"
)

// NodeInfo is the per-candidate view the Controller hands a policy.
type NodeInfo struct {
	ID cluster.NodeID
	// UpToDate is how many bytes of the CE's parameters are already
	// consistent on this node.
	UpToDate memmodel.Bytes
	// Transfer is how many bytes would have to move to this node.
	Transfer memmodel.Bytes
	// TransferTime is the estimated time to move the missing bytes,
	// from the interconnection matrix (min-transfer-time only).
	TransferTime sim.VirtualTime
	// PredictedStall is the worker's predicted UVM migration stall for
	// the CE's working set — the fault-rate cost term from the gpusim
	// oversubscription model. Zero when the working set fits the worker's
	// device memory, or when the policy did not ask for it (only policies
	// implementing StallAware with NeedsStallView() true get it filled).
	PredictedStall sim.VirtualTime
}

// Request is one scheduling decision.
type Request struct {
	CE *dag.CE
	// Total is the combined size of the CE's parameters.
	Total memmodel.Bytes
	// Nodes are the candidate workers, ordered by node ID. The slice is
	// only valid for the duration of Assign: the Controller reuses its
	// backing buffer across requests.
	Nodes []NodeInfo
	// MaxUp, when positive, is the precomputed maximum NodeInfo.UpToDate
	// over Nodes. The Controller fills it while building the data view so
	// informed policies need not rescan the candidates; a zero value
	// means "not provided" and policies recompute it (a zero maximum is
	// handled identically either way: nothing is viable).
	MaxUp memmodel.Bytes
}

// Policy assigns CEs to workers. Implementations keep internal state
// (round-robin position) and are not safe for concurrent use; the
// Controller serializes scheduling, as in the paper.
type Policy interface {
	// Name returns the policy's registry name.
	Name() string
	// Assign picks a worker for the request. It must only be called with
	// at least one candidate node.
	Assign(req Request) cluster.NodeID
	// NeedsDataView reports whether Assign consults per-node data
	// locality (UpToDate/Transfer/TransferTime). Static policies return
	// false, letting the Controller skip building the O(nodes) view —
	// which is why they stay flat in the paper's Figure 9.
	NeedsDataView() bool
}

// ExplorationLevel is the exploitation threshold of the online policies: a
// node is only viable for exploitation if it already holds at least this
// fraction of the CE's data that is resident on any worker (i.e. relative
// to the best-provisioned worker). When no worker holds any of the CE's
// data the policy explores round-robin. Keying viability on
// worker-resident data rather than total data is what reproduces the
// paper's Figure 8 pathology: a small shared operand (MV's dense vector)
// makes one node viable for every CE and the online policies pile the
// whole working set onto it.
type ExplorationLevel float64

// The paper's three heuristic levels.
const (
	Low    ExplorationLevel = 0.10
	Medium ExplorationLevel = 0.40
	High   ExplorationLevel = 0.70
)

// LevelFromName parses "low", "medium" or "high".
func LevelFromName(s string) (ExplorationLevel, error) {
	switch strings.ToLower(s) {
	case "low":
		return Low, nil
	case "medium", "med":
		return Medium, nil
	case "high":
		return High, nil
	}
	return 0, fmt.Errorf("policy: unknown exploration level %q", s)
}

func (l ExplorationLevel) String() string {
	switch l {
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	}
	return fmt.Sprintf("%.2f", float64(l))
}

// RoundRobin schedules each CE on the next node in a circular pattern
// (paper Fig. 4a).
type RoundRobin struct {
	next int
}

// NewRoundRobin returns a fresh round-robin policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Policy.
func (p *RoundRobin) Name() string { return "round-robin" }

// NeedsDataView implements Policy.
func (p *RoundRobin) NeedsDataView() bool { return false }

// Assign implements Policy.
func (p *RoundRobin) Assign(req Request) cluster.NodeID {
	id := req.Nodes[p.next%len(req.Nodes)].ID
	p.next++
	return id
}

// VectorStep assigns a pre-defined number of consecutive CEs to each node
// before switching to the next (paper Fig. 4b): with vector [1,2,3] and
// two nodes, CE1 goes to node 1, CEs 2-3 to node 2, CEs 4-6 to node 1.
type VectorStep struct {
	vector []int
	// vi is the current vector entry, used counts CEs assigned under it,
	// node is the current node position.
	vi, used, node int
}

// NewVectorStep builds the policy; entries must be positive.
func NewVectorStep(vector []int) (*VectorStep, error) {
	if len(vector) == 0 {
		return nil, fmt.Errorf("policy: vector-step needs a non-empty vector")
	}
	for _, v := range vector {
		if v <= 0 {
			return nil, fmt.Errorf("policy: vector-step entries must be positive, got %d", v)
		}
	}
	return &VectorStep{vector: append([]int(nil), vector...)}, nil
}

// Name implements Policy.
func (p *VectorStep) Name() string { return "vector-step" }

// NeedsDataView implements Policy.
func (p *VectorStep) NeedsDataView() bool { return false }

// Assign implements Policy.
func (p *VectorStep) Assign(req Request) cluster.NodeID {
	id := req.Nodes[p.node%len(req.Nodes)].ID
	p.used++
	if p.used >= p.vector[p.vi%len(p.vector)] {
		p.used = 0
		p.vi++
		p.node++
	}
	return id
}

// MinTransferSize assigns the CE to the viable node holding the most
// up-to-date data, minimizing bytes moved (paper Fig. 4c). Nodes below the
// exploration threshold are not viable; with no viable node the policy
// falls back to round-robin (exploration).
type MinTransferSize struct {
	level    ExplorationLevel
	fallback RoundRobin
}

// NewMinTransferSize builds the policy at an exploration level.
func NewMinTransferSize(level ExplorationLevel) *MinTransferSize {
	return &MinTransferSize{level: level}
}

// Name implements Policy.
func (p *MinTransferSize) Name() string { return "min-transfer-size" }

// NeedsDataView implements Policy.
func (p *MinTransferSize) NeedsDataView() bool { return true }

// Assign implements Policy.
func (p *MinTransferSize) Assign(req Request) cluster.NodeID {
	minViable, anyViable := viabilityFloor(req, p.level)
	best := -1
	for i, n := range req.Nodes {
		if !anyViable || float64(n.UpToDate) < minViable {
			continue
		}
		if best == -1 || n.Transfer < req.Nodes[best].Transfer ||
			(n.Transfer == req.Nodes[best].Transfer && n.ID < req.Nodes[best].ID) {
			best = i
		}
	}
	if best == -1 {
		return p.fallback.Assign(req)
	}
	return req.Nodes[best].ID
}

// MinTransferTime assigns the CE to the viable node with the lowest
// estimated transfer time for the missing data, using the interconnection
// bandwidth matrix built at startup (paper Fig. 4d). Falls back to
// round-robin when no node passes the exploration threshold.
type MinTransferTime struct {
	level    ExplorationLevel
	fallback RoundRobin
}

// NewMinTransferTime builds the policy at an exploration level.
func NewMinTransferTime(level ExplorationLevel) *MinTransferTime {
	return &MinTransferTime{level: level}
}

// Name implements Policy.
func (p *MinTransferTime) Name() string { return "min-transfer-time" }

// NeedsDataView implements Policy.
func (p *MinTransferTime) NeedsDataView() bool { return true }

// Assign implements Policy.
func (p *MinTransferTime) Assign(req Request) cluster.NodeID {
	minViable, anyViable := viabilityFloor(req, p.level)
	best := -1
	for i, n := range req.Nodes {
		if !anyViable || float64(n.UpToDate) < minViable {
			continue
		}
		if best == -1 || n.TransferTime < req.Nodes[best].TransferTime ||
			(n.TransferTime == req.Nodes[best].TransferTime && n.ID < req.Nodes[best].ID) {
			best = i
		}
	}
	if best == -1 {
		return p.fallback.Assign(req)
	}
	return req.Nodes[best].ID
}

// maxUpToDate reports the largest worker-resident share of the CE's data,
// preferring the Controller's precomputed value over a rescan.
func maxUpToDate(req Request) memmodel.Bytes {
	if req.MaxUp > 0 {
		return req.MaxUp
	}
	var max memmodel.Bytes
	for _, n := range req.Nodes {
		if n.UpToDate > max {
			max = n.UpToDate
		}
	}
	return max
}

// viabilityFloor hoists the exploration threshold out of the candidate
// loop: a node is viable iff anyViable and its UpToDate bytes reach the
// returned floor (level × the best worker's share). With no worker data at
// all nothing is viable and the caller explores round-robin.
func viabilityFloor(req Request, level ExplorationLevel) (floor float64, anyViable bool) {
	maxUp := maxUpToDate(req)
	if maxUp <= 0 {
		return 0, false
	}
	return float64(level) * float64(maxUp), true
}

// New constructs a policy by name: "round-robin", "vector-step" (with the
// given vector), "min-transfer-size" or "min-transfer-time" (with the
// given exploration level).
func New(name string, vector []int, level ExplorationLevel) (Policy, error) {
	switch name {
	case "round-robin", "rr":
		return NewRoundRobin(), nil
	case "vector-step", "vs":
		if len(vector) == 0 {
			vector = []int{1}
		}
		return NewVectorStep(vector)
	case "min-transfer-size", "mts":
		return NewMinTransferSize(level), nil
	case "min-transfer-time", "mtt":
		return NewMinTransferTime(level), nil
	case "min-stall-time", "mst":
		return NewMinStallTime(), nil
	case "uvm-aware", "uvm":
		// Default cap: 2x one paper node's device memory — the dense
		// sweep collapse threshold.
		return NewUVMAware(level, 64*memmodel.GiB), nil
	}
	return nil, fmt.Errorf("policy: unknown policy %q (have %s)", name, strings.Join(Names(), ", "))
}

// Names lists the available policy names.
func Names() []string {
	names := []string{"round-robin", "vector-step", "min-transfer-size",
		"min-transfer-time", "min-stall-time", "uvm-aware"}
	sort.Strings(names)
	return names
}
