package policy

import (
	"testing"

	"grout/internal/cluster"
	"grout/internal/sim"
)

// batchReqs builds a mixed window: some requests with clear locality,
// some with none (forcing the round-robin exploration fallback, whose
// cursor must advance identically under batch and per-CE assignment).
func batchReqs() []Request {
	mk := func(infos ...NodeInfo) Request {
		return Request{Nodes: infos}
	}
	return []Request{
		mk(NodeInfo{ID: 1, UpToDate: 100, TransferTime: 5},
			NodeInfo{ID: 2, UpToDate: 10, Transfer: 90, TransferTime: 9}),
		mk(NodeInfo{ID: 1}, NodeInfo{ID: 2}), // no data anywhere: explore
		mk(NodeInfo{ID: 1}, NodeInfo{ID: 2}), // explore again
		mk(NodeInfo{ID: 1, UpToDate: 10, Transfer: 90, TransferTime: sim.VirtualTime(9)},
			NodeInfo{ID: 2, UpToDate: 100, TransferTime: 2}),
	}
}

func TestAssignBatchMatchesSequential(t *testing.T) {
	cases := []struct {
		name  string
		batch func() (BatchAssigner, Policy)
	}{
		{"min-transfer-time", func() (BatchAssigner, Policy) {
			return NewMinTransferTime(Medium), NewMinTransferTime(Medium)
		}},
		{"min-transfer-size", func() (BatchAssigner, Policy) {
			return NewMinTransferSize(Medium), NewMinTransferSize(Medium)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ba, seq := tc.batch()
			reqs := batchReqs()
			got := ba.AssignBatch(reqs)
			if len(got) != len(reqs) {
				t.Fatalf("batch returned %d placements for %d requests", len(got), len(reqs))
			}
			for i, req := range reqs {
				want := seq.Assign(req)
				if got[i] != want {
					t.Errorf("request %d: batch %v, sequential %v", i, got[i], want)
				}
			}
			// The exploration cursor advanced with the batch: a further
			// no-data request must continue the round-robin, not restart.
			after := Request{Nodes: []NodeInfo{{ID: 1}, {ID: 2}}}
			if g, w := ba.(Policy).Assign(after), seq.Assign(after); g != w {
				t.Errorf("cursor diverged after batch: %v vs %v", g, w)
			}
		})
	}
}

func TestRoundRobinHasNoBatchPath(t *testing.T) {
	// Static policies skip the data view entirely; the controller's
	// per-CE fallback is already the cheap path for them.
	var p Policy = NewRoundRobin()
	if _, ok := p.(BatchAssigner); ok {
		t.Fatal("round-robin unexpectedly implements BatchAssigner")
	}
	_ = cluster.NodeID(0)
}
