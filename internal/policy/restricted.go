package policy

// Restricted clamps any policy to a fixed worker subset — the placement
// guard of the sharded control plane (DESIGN.md §5.8). A shard
// controller's fabric view already only contains its partition, so the
// wrapper is defense in depth: even a policy that misbehaves (or a
// Request built against a wider view) can never place a CE outside the
// shard's workers. Candidates outside the subset are filtered before the
// inner policy sees them, and an out-of-subset answer is clamped
// round-robin onto the allowed workers.

import (
	"sort"

	"grout/internal/cluster"
)

// Restricted wraps an inner Policy, constraining assignments to an
// allowed worker set. It forwards the optional extensions the controller
// probes for (BatchAssigner, StallAware), so wrapping loses no fast
// paths. Like all policies it is not safe for concurrent use.
type Restricted struct {
	inner   Policy
	allowed map[cluster.NodeID]struct{}
	order   []cluster.NodeID // sorted, for deterministic clamping
	rr      int
	scratch []NodeInfo
}

// Restrict wraps inner, allowing only the given workers. The slice is
// copied.
func Restrict(inner Policy, workers []cluster.NodeID) *Restricted {
	p := &Restricted{
		inner:   inner,
		allowed: make(map[cluster.NodeID]struct{}, len(workers)),
		order:   append([]cluster.NodeID(nil), workers...),
	}
	sort.Slice(p.order, func(i, j int) bool { return p.order[i] < p.order[j] })
	for _, w := range p.order {
		p.allowed[w] = struct{}{}
	}
	return p
}

// Name implements Policy.
func (p *Restricted) Name() string { return "restricted(" + p.inner.Name() + ")" }

// NeedsDataView implements Policy, forwarding the inner policy's answer.
func (p *Restricted) NeedsDataView() bool { return p.inner.NeedsDataView() }

// NeedsStallView implements StallAware when the inner policy does.
func (p *Restricted) NeedsStallView() bool {
	if sa, ok := p.inner.(StallAware); ok {
		return sa.NeedsStallView()
	}
	return false
}

// clampRR picks the next allowed worker round-robin: the fallback when
// filtering leaves no candidate or the inner policy answers outside the
// subset.
func (p *Restricted) clampRR() cluster.NodeID {
	w := p.order[p.rr%len(p.order)]
	p.rr++
	return w
}

// filter narrows req's candidates to the allowed set, into scratch (the
// controller reuses req.Nodes' backing array, so it must not be mutated
// or retained).
func (p *Restricted) filter(req Request) Request {
	n := 0
	for _, ni := range req.Nodes {
		if _, ok := p.allowed[ni.ID]; ok {
			n++
		}
	}
	if n == len(req.Nodes) {
		return req
	}
	p.scratch = p.scratch[:0]
	for _, ni := range req.Nodes {
		if _, ok := p.allowed[ni.ID]; ok {
			p.scratch = append(p.scratch, ni)
		}
	}
	req.Nodes = p.scratch
	// MaxUp was computed over the wider view; force the inner policy to
	// recompute it over the survivors.
	req.MaxUp = 0
	return req
}

// Assign implements Policy.
func (p *Restricted) Assign(req Request) cluster.NodeID {
	req = p.filter(req)
	if len(req.Nodes) == 0 {
		return p.clampRR()
	}
	w := p.inner.Assign(req)
	if _, ok := p.allowed[w]; !ok {
		return p.clampRR()
	}
	return w
}

// AssignBatch implements BatchAssigner, forwarding to the inner policy's
// batch path when it has one so the window optimizer keeps its single
// call per window.
func (p *Restricted) AssignBatch(reqs []Request) []cluster.NodeID {
	ba, ok := p.inner.(BatchAssigner)
	if !ok {
		out := make([]cluster.NodeID, len(reqs))
		for i, req := range reqs {
			out[i] = p.Assign(req)
		}
		return out
	}
	// Filtering may reuse scratch per request, so narrow each request
	// into its own slice for the batch call. A request whose every
	// candidate was filtered still needs one for the inner policy's
	// Assign contract; its answer is overridden below.
	narrowed := make([]Request, len(reqs))
	empty := make([]bool, len(reqs))
	for i, req := range reqs {
		n := 0
		for _, ni := range req.Nodes {
			if _, ok := p.allowed[ni.ID]; ok {
				n++
			}
		}
		if n == len(req.Nodes) && n > 0 {
			narrowed[i] = req
			continue
		}
		keep := make([]NodeInfo, 0, n+1)
		for _, ni := range req.Nodes {
			if _, ok := p.allowed[ni.ID]; ok {
				keep = append(keep, ni)
			}
		}
		if len(keep) == 0 {
			keep = append(keep, NodeInfo{ID: p.order[0]})
			empty[i] = true
		}
		req.Nodes = keep
		req.MaxUp = 0
		narrowed[i] = req
	}
	out := ba.AssignBatch(narrowed)
	for i, w := range out {
		if _, ok := p.allowed[w]; !ok || empty[i] {
			out[i] = p.clampRR()
		}
	}
	return out
}
