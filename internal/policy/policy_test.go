package policy

import (
	"testing"
	"testing/quick"

	"grout/internal/cluster"
	"grout/internal/memmodel"
	"grout/internal/sim"
)

func nodes(n int) []NodeInfo {
	out := make([]NodeInfo, n)
	for i := range out {
		out[i] = NodeInfo{ID: cluster.NodeID(i + 1)}
	}
	return out
}

func req(ns []NodeInfo, total memmodel.Bytes) Request {
	return Request{Total: total, Nodes: ns}
}

func TestRoundRobinCycles(t *testing.T) {
	p := NewRoundRobin()
	ns := nodes(3)
	var got []cluster.NodeID
	for i := 0; i < 7; i++ {
		got = append(got, p.Assign(req(ns, 0)))
	}
	want := []cluster.NodeID{1, 2, 3, 1, 2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round-robin sequence = %v, want %v", got, want)
		}
	}
}

func TestVectorStepPaperExample(t *testing.T) {
	// Paper: vector [1,2,3] with two nodes -> first CE to node 1, two CEs
	// to node 2, three CEs to node 1.
	p, err := NewVectorStep([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	ns := nodes(2)
	var got []cluster.NodeID
	for i := 0; i < 6; i++ {
		got = append(got, p.Assign(req(ns, 0)))
	}
	want := []cluster.NodeID{1, 2, 2, 1, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vector-step sequence = %v, want %v", got, want)
		}
	}
}

func TestVectorStepValidation(t *testing.T) {
	if _, err := NewVectorStep(nil); err == nil {
		t.Fatalf("empty vector accepted")
	}
	if _, err := NewVectorStep([]int{1, 0}); err == nil {
		t.Fatalf("zero entry accepted")
	}
	if _, err := NewVectorStep([]int{-1}); err == nil {
		t.Fatalf("negative entry accepted")
	}
}

func TestMinTransferSizePicksLocalData(t *testing.T) {
	p := NewMinTransferSize(Low)
	ns := []NodeInfo{
		{ID: 1, UpToDate: 10 * memmodel.GiB, Transfer: 2 * memmodel.GiB},
		{ID: 2, UpToDate: 4 * memmodel.GiB, Transfer: 8 * memmodel.GiB},
	}
	if got := p.Assign(req(ns, 12*memmodel.GiB)); got != 1 {
		t.Fatalf("min-transfer-size picked %v, want 1", got)
	}
}

func TestMinTransferSizeExplorationFallback(t *testing.T) {
	// When no worker holds any of the CE's data, nothing is viable: the
	// policy explores round-robin instead.
	p := NewMinTransferSize(High)
	ns := []NodeInfo{
		{ID: 1, Transfer: 12 * memmodel.GiB},
		{ID: 2, Transfer: 12 * memmodel.GiB},
	}
	r := req(ns, 12*memmodel.GiB)
	if got := p.Assign(r); got != 1 {
		t.Fatalf("exploration first pick = %v, want 1 (round-robin)", got)
	}
	if got := p.Assign(r); got != 2 {
		t.Fatalf("exploration second pick = %v, want 2 (round-robin)", got)
	}
}

func TestViabilityRelativeToBestWorker(t *testing.T) {
	// Under High, a node well below the best-provisioned worker's share
	// is not viable; the best worker is always viable.
	p := NewMinTransferSize(High)
	ns := []NodeInfo{
		{ID: 1, UpToDate: memmodel.GiB, Transfer: 11 * memmodel.GiB},
		{ID: 2, UpToDate: 10 * memmodel.GiB, Transfer: 2 * memmodel.GiB},
	}
	if got := p.Assign(req(ns, 12*memmodel.GiB)); got != 2 {
		t.Fatalf("best-provisioned worker not chosen: %v", got)
	}
}

// The paper's Figure 8 MV pathology: a tiny shared operand resident on one
// node makes that node viable for every CE, so the online policies pile
// the whole working set onto it instead of spreading.
func TestSharedOperandCausesPileOn(t *testing.T) {
	p := NewMinTransferSize(Low)
	// Node 1 holds only the small shared vector (64 KiB of a 12 GiB CE).
	ns := []NodeInfo{
		{ID: 1, UpToDate: 64 * memmodel.KiB, Transfer: 12 * memmodel.GiB},
		{ID: 2, UpToDate: 0, Transfer: 12*memmodel.GiB + 64*memmodel.KiB},
	}
	for i := 0; i < 5; i++ {
		if got := p.Assign(req(ns, 12*memmodel.GiB)); got != 1 {
			t.Fatalf("pile-on pick %d = %v, want 1", i, got)
		}
	}
}

func TestMinTransferSizeThresholdBoundary(t *testing.T) {
	// Exactly at the threshold is viable.
	p := NewMinTransferSize(Medium) // 0.40
	ns := []NodeInfo{
		{ID: 1, UpToDate: 4 * memmodel.GiB, Transfer: 6 * memmodel.GiB},
		{ID: 2, UpToDate: 0, Transfer: 10 * memmodel.GiB},
	}
	if got := p.Assign(req(ns, 10*memmodel.GiB)); got != 1 {
		t.Fatalf("at-threshold node not chosen: %v", got)
	}
}

func TestMinTransferTimePicksFastestLink(t *testing.T) {
	p := NewMinTransferTime(Low)
	ns := []NodeInfo{
		{ID: 1, UpToDate: 6 * memmodel.GiB, Transfer: 6 * memmodel.GiB, TransferTime: sim.VirtualTime(5e9)},
		{ID: 2, UpToDate: 6 * memmodel.GiB, Transfer: 6 * memmodel.GiB, TransferTime: sim.VirtualTime(2e9)},
	}
	if got := p.Assign(req(ns, 12*memmodel.GiB)); got != 2 {
		t.Fatalf("min-transfer-time picked %v, want 2", got)
	}
}

func TestMinTransferTimeFallback(t *testing.T) {
	p := NewMinTransferTime(High)
	ns := []NodeInfo{
		{ID: 1, TransferTime: sim.VirtualTime(1e9)},
		{ID: 2, TransferTime: sim.VirtualTime(2e9)},
	}
	r := req(ns, 10*memmodel.GiB)
	if got := p.Assign(r); got != 1 {
		t.Fatalf("fallback pick = %v", got)
	}
	if got := p.Assign(r); got != 2 {
		t.Fatalf("fallback must round-robin, got %v twice", got)
	}
}

func TestZeroTotalAlwaysViable(t *testing.T) {
	p := NewMinTransferSize(High)
	ns := nodes(2)
	if got := p.Assign(req(ns, 0)); got != 1 {
		t.Fatalf("zero-data CE pick = %v, want 1 (first, all viable, zero transfer)", got)
	}
}

func TestTieBreakByNodeID(t *testing.T) {
	ps := NewMinTransferSize(Low)
	ns := []NodeInfo{
		{ID: 2, UpToDate: 5 * memmodel.GiB, Transfer: memmodel.GiB},
		{ID: 1, UpToDate: 5 * memmodel.GiB, Transfer: memmodel.GiB},
	}
	if got := ps.Assign(req(ns, 6*memmodel.GiB)); got != 1 {
		t.Fatalf("tie break = %v, want lowest ID", got)
	}
}

func TestNewByName(t *testing.T) {
	for name, want := range map[string]string{
		"round-robin":       "round-robin",
		"rr":                "round-robin",
		"vector-step":       "vector-step",
		"vs":                "vector-step",
		"min-transfer-size": "min-transfer-size",
		"mts":               "min-transfer-size",
		"min-transfer-time": "min-transfer-time",
		"mtt":               "min-transfer-time",
	} {
		p, err := New(name, []int{2}, Medium)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Fatalf("New(%q).Name() = %q, want %q", name, p.Name(), want)
		}
	}
	if _, err := New("bogus", nil, Low); err == nil {
		t.Fatalf("bogus policy accepted")
	}
	// vector-step default vector.
	if _, err := New("vector-step", nil, Low); err != nil {
		t.Fatalf("vector-step with default vector: %v", err)
	}
}

func TestLevelFromName(t *testing.T) {
	for name, want := range map[string]ExplorationLevel{
		"low": Low, "medium": Medium, "med": Medium, "high": High, "HIGH": High,
	} {
		got, err := LevelFromName(name)
		if err != nil || got != want {
			t.Fatalf("LevelFromName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := LevelFromName("extreme"); err == nil {
		t.Fatalf("bad level accepted")
	}
	if Low.String() != "low" || Medium.String() != "medium" || High.String() != "high" {
		t.Fatalf("level strings wrong")
	}
	if ExplorationLevel(0.33).String() != "0.33" {
		t.Fatalf("custom level string = %q", ExplorationLevel(0.33).String())
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("names = %v", names)
	}
}

// Property: every policy always returns one of the candidate node IDs, for
// any request shape.
func TestPoliciesAlwaysReturnCandidate(t *testing.T) {
	f := func(nNodes uint8, upToDate []uint32, totalRaw uint32) bool {
		n := int(nNodes%16) + 1
		ns := make([]NodeInfo, n)
		for i := range ns {
			ns[i].ID = cluster.NodeID(i + 1)
			if i < len(upToDate) {
				ns[i].UpToDate = memmodel.Bytes(upToDate[i])
				ns[i].TransferTime = sim.VirtualTime(upToDate[i])
			}
		}
		total := memmodel.Bytes(totalRaw)
		vs, _ := NewVectorStep([]int{1, 3})
		policies := []Policy{
			NewRoundRobin(), vs,
			NewMinTransferSize(Medium), NewMinTransferTime(Medium),
			NewMinStallTime(),
		}
		for _, p := range policies {
			got := p.Assign(req(ns, total))
			ok := false
			for _, c := range ns {
				if c.ID == got {
					ok = true
				}
			}
			if !ok {
				t.Logf("%s returned non-candidate %v", p.Name(), got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUVMAwareRespectsCap(t *testing.T) {
	// 10 GiB cap; CEs carry 4 GiB each with false affinity to node 1 (a
	// tiny shared operand) — the classic MV pile-on setup. The policy
	// must stop exploiting node 1 after ~2 CEs.
	p := NewUVMAware(Low, 10*memmodel.GiB)
	mk := func() []NodeInfo {
		return []NodeInfo{
			{ID: 1, UpToDate: 64 * memmodel.KiB, Transfer: 4 * memmodel.GiB},
			{ID: 2, UpToDate: 0, Transfer: 4 * memmodel.GiB},
		}
	}
	var got []cluster.NodeID
	for i := 0; i < 4; i++ {
		got = append(got, p.Assign(req(mk(), 4*memmodel.GiB)))
	}
	// First two exploit node 1 (viable and local); the cap then diverts
	// the rest to node 2.
	if got[0] != 1 || got[1] != 1 {
		t.Fatalf("first assignments = %v, want node 1 exploitation", got)
	}
	if got[2] != 2 || got[3] != 2 {
		t.Fatalf("cap not enforced: assignments = %v", got)
	}
	if p.AssignedBytes(1) > 10*memmodel.GiB {
		t.Fatalf("node 1 over cap: %v", p.AssignedBytes(1))
	}
	// With every node saturated, overflow spreads by least load instead
	// of piling back onto the locality target.
	fifth := p.Assign(req(mk(), 4*memmodel.GiB))
	sixth := p.Assign(req(mk(), 4*memmodel.GiB))
	if fifth == sixth {
		t.Fatalf("saturated overflow piled onto one node: %v, %v", fifth, sixth)
	}
}

func TestUVMAwareFallsBackRoundRobinWhenCold(t *testing.T) {
	p := NewUVMAware(Medium, 32*memmodel.GiB)
	ns := nodes(3)
	if got := p.Assign(req(ns, 0)); got != 1 {
		t.Fatalf("cold first pick = %v", got)
	}
	if got := p.Assign(req(ns, 0)); got != 2 {
		t.Fatalf("cold second pick = %v, want round-robin", got)
	}
}

func TestUVMAwareRegistered(t *testing.T) {
	p, err := New("uvm-aware", nil, Low)
	if err != nil || p.Name() != "uvm-aware" {
		t.Fatalf("New(uvm-aware) = %v, %v", p, err)
	}
	if !p.NeedsDataView() {
		t.Fatalf("uvm-aware must need the data view")
	}
	if len(Names()) != 6 {
		t.Fatalf("names = %v", Names())
	}
}
