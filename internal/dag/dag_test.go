package dag

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"grout/internal/memmodel"
)

func rd(a ArrayID) Access { return Access{Array: a, Mode: memmodel.Read} }
func wr(a ArrayID) Access { return Access{Array: a, Mode: memmodel.Write} }
func rw(a ArrayID) Access { return Access{Array: a, Mode: memmodel.ReadWrite} }

// add creates and inserts a CE, returning it and its ancestors' IDs.
func add(g *Graph, label string, accs ...Access) (*CE, []CEID) {
	ce := g.NewCE(label, accs, nil)
	anc := g.Add(ce)
	ids := make([]CEID, len(anc))
	for i, v := range anc {
		ids[i] = v.CE.ID
	}
	return ce, ids
}

func TestRAWDependency(t *testing.T) {
	g := New()
	w, _ := add(g, "write", wr(1))
	_, anc := add(g, "read", rd(1))
	if len(anc) != 1 || anc[0] != w.ID {
		t.Fatalf("RAW ancestors = %v, want [%d]", anc, w.ID)
	}
}

func TestWARDependency(t *testing.T) {
	g := New()
	add(g, "init", wr(1))
	r, _ := add(g, "read", rd(1))
	_, anc := add(g, "overwrite", wr(1))
	// Overwrite depends on the reader (WAR); the writer edge is redundant
	// because the reader already depends on the writer.
	if len(anc) != 1 || anc[0] != r.ID {
		t.Fatalf("WAR ancestors = %v, want [%d]", anc, r.ID)
	}
}

func TestWAWDependency(t *testing.T) {
	g := New()
	w1, _ := add(g, "w1", wr(1))
	_, anc := add(g, "w2", wr(1))
	if len(anc) != 1 || anc[0] != w1.ID {
		t.Fatalf("WAW ancestors = %v, want [%d]", anc, w1.ID)
	}
}

func TestIndependentReadsShareNoDependency(t *testing.T) {
	g := New()
	add(g, "init", wr(1))
	_, anc1 := add(g, "r1", rd(1))
	_, anc2 := add(g, "r2", rd(1))
	if len(anc1) != 1 || len(anc2) != 1 || anc1[0] != anc2[0] {
		t.Fatalf("parallel readers should both depend only on writer: %v %v", anc1, anc2)
	}
	// Both readers are in the frontier; a subsequent writer collects both.
	_, anc3 := add(g, "w2", wr(1))
	if len(anc3) != 2 {
		t.Fatalf("writer after two readers: ancestors = %v, want 2", anc3)
	}
}

func TestRedundantEdgeFiltered(t *testing.T) {
	// Paper's example: C depends on A and B, but B depends on A -> only
	// the B edge is kept.
	g := New()
	a, _ := add(g, "A", wr(1))
	b, _ := add(g, "B", rw(1), wr(2))
	_, anc := add(g, "C", rd(1), rd(2))
	if len(anc) != 1 || anc[0] != b.ID {
		t.Fatalf("C ancestors = %v, want only B (%d); A=%d", anc, b.ID, a.ID)
	}
	if g.Edges() != 2 {
		t.Fatalf("edges = %d, want 2 (A->B, B->C)", g.Edges())
	}
}

func TestDiamondDependency(t *testing.T) {
	g := New()
	add(g, "src", wr(1))
	l, _ := add(g, "left", rd(1), wr(2))
	r, _ := add(g, "right", rd(1), wr(3))
	_, anc := add(g, "join", rd(2), rd(3))
	if len(anc) != 2 || anc[0] != l.ID || anc[1] != r.ID {
		t.Fatalf("join ancestors = %v, want [%d %d]", anc, l.ID, r.ID)
	}
	if g.MaxDepth() != 3 {
		t.Fatalf("diamond depth = %d, want 3", g.MaxDepth())
	}
}

func TestDisjointArraysNoDependency(t *testing.T) {
	g := New()
	add(g, "a", wr(1))
	_, anc := add(g, "b", wr(2))
	if len(anc) != 0 {
		t.Fatalf("disjoint CEs have ancestors: %v", anc)
	}
	if len(g.Roots()) != 2 {
		t.Fatalf("roots = %d, want 2", len(g.Roots()))
	}
}

func TestFrontierEvolution(t *testing.T) {
	g := New()
	add(g, "w1", wr(1))
	if f := g.Frontier(); len(f) != 1 {
		t.Fatalf("frontier after w1 = %d", len(f))
	}
	add(g, "r1", rd(1))
	// Frontier holds the writer (still last writer) and the reader.
	if f := g.Frontier(); len(f) != 2 {
		t.Fatalf("frontier after r1 = %d", len(f))
	}
	w2, _ := add(g, "w2", wr(1))
	// Overwrite supersedes both.
	f := g.Frontier()
	if len(f) != 1 || f[0].CE.ID != w2.ID {
		t.Fatalf("frontier after w2 = %v", f)
	}
}

func TestReadWriteActsAsBoth(t *testing.T) {
	g := New()
	w, _ := add(g, "init", wr(1))
	u, anc := add(g, "update", rw(1))
	if len(anc) != 1 || anc[0] != w.ID {
		t.Fatalf("rw ancestors = %v", anc)
	}
	_, anc2 := add(g, "update2", rw(1))
	if len(anc2) != 1 || anc2[0] != u.ID {
		t.Fatalf("chained rw ancestors = %v, want [%d]", anc2, u.ID)
	}
}

func TestTopoOrderAndAcyclicity(t *testing.T) {
	g := New()
	add(g, "a", wr(1))
	add(g, "b", rd(1), wr(2))
	add(g, "c", rd(2))
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 {
		t.Fatalf("topo order size = %d", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i].ID <= order[i-1].ID {
			t.Fatalf("topo order not increasing")
		}
	}
}

func TestVertexAccessors(t *testing.T) {
	g := New()
	a, _ := add(g, "a", wr(1))
	b, _ := add(g, "b", rd(1))
	va, vb := g.Vertex(a.ID), g.Vertex(b.ID)
	if va == nil || vb == nil {
		t.Fatalf("vertices missing")
	}
	if len(va.Children()) != 1 || va.Children()[0] != vb {
		t.Fatalf("children linkage wrong")
	}
	if len(vb.Parents()) != 1 || vb.Parents()[0] != va {
		t.Fatalf("parents linkage wrong")
	}
	if g.Vertex(999) != nil {
		t.Fatalf("unknown vertex not nil")
	}
	if a.String() == "" {
		t.Fatalf("CE string empty")
	}
}

func TestDuplicateAddPanics(t *testing.T) {
	g := New()
	ce := g.NewCE("x", []Access{wr(1)}, nil)
	g.Add(ce)
	defer func() {
		if recover() == nil {
			t.Fatalf("duplicate add did not panic")
		}
	}()
	g.Add(ce)
}

// Property: random CE streams always yield acyclic graphs in submission
// order with no redundant edges (no parent reachable from another parent).
func TestRandomGraphInvariants(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		count := int(n%40) + 2
		for i := 0; i < count; i++ {
			var accs []Access
			arrays := rng.Intn(3) + 1
			for j := 0; j < arrays; j++ {
				accs = append(accs, Access{
					Array: ArrayID(rng.Intn(5) + 1),
					Mode:  memmodel.AccessMode(rng.Intn(3)),
				})
			}
			add(g, "ce", accs...)
		}
		if _, err := g.TopoOrder(); err != nil {
			return false
		}
		// No redundant direct edges.
		for id, v := range g.vertices {
			for i1, vp1 := range v.parents {
				for i2, vp2 := range v.parents {
					if i1 != i2 && g.reaches(vp2, vp1.CE.ID) {
						t.Logf("redundant edge %d->%d (via %d)", vp1.CE.ID, id, vp2.CE.ID)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxDepthChain(t *testing.T) {
	g := New()
	for i := 0; i < 10; i++ {
		add(g, "step", rw(1))
	}
	if d := g.MaxDepth(); d != 10 {
		t.Fatalf("chain depth = %d, want 10", d)
	}
	if g.Size() != 10 || g.Edges() != 9 {
		t.Fatalf("size/edges = %d/%d", g.Size(), g.Edges())
	}
}

func TestDOTOutput(t *testing.T) {
	g := New()
	a, _ := add(g, "producer", wr(1))
	b, _ := add(g, "consumer", rd(1))
	dot := g.DOT("test")
	for _, want := range []string{
		"digraph \"test\"", "producer", "consumer",
		"n1 -> n2",
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	_ = a
	_ = b
}

func TestLastWriter(t *testing.T) {
	g := New()
	if g.LastWriter(1) != nil {
		t.Fatal("LastWriter on empty graph should be nil")
	}
	first, _ := add(g, "init", wr(1))
	if got := g.LastWriter(1); got == nil || got.ID != first.ID {
		t.Fatalf("LastWriter = %v, want CE %d", got, first.ID)
	}
	add(g, "read", rd(1))
	if got := g.LastWriter(1); got == nil || got.ID != first.ID {
		t.Fatalf("LastWriter after read = %v, want CE %d unchanged", got, first.ID)
	}
	second, _ := add(g, "mutate", rw(1))
	if got := g.LastWriter(1); got == nil || got.ID != second.ID {
		t.Fatalf("LastWriter after rw = %v, want CE %d", got, second.ID)
	}
	if g.LastWriter(2) != nil {
		t.Fatal("LastWriter of untouched array should be nil")
	}
}
