package dag

import (
	"fmt"
	"testing"

	"grout/internal/memmodel"
)

// benchShape builds the access list for the i-th CE of a synthetic stream.
type benchShape struct {
	name string
	// arrays is how many distinct arrays the stream touches.
	arrays int
	// accs returns the i-th CE's accesses (may reuse the passed buffer).
	accs func(i int, buf []Access) []Access
}

// benchShapes are the stream structures of the controller-throughput
// story: a deep serial chain (worst case for reachability probes), a wide
// fan-out (many readers per writer, worst case for WAR gathering), and the
// Fig. 9 synthetic stream (16 arrays touched round-robin read-write).
func benchShapes() []benchShape {
	return []benchShape{
		{
			name:   "deep-chain",
			arrays: 1,
			accs: func(i int, buf []Access) []Access {
				return append(buf[:0], Access{Array: 1, Mode: memmodel.ReadWrite})
			},
		},
		{
			name:   "wide-fanout",
			arrays: 1,
			// One writer, 62 readers, repeat: the writer picks up a WAR
			// edge against every reader of the previous round.
			accs: func(i int, buf []Access) []Access {
				mode := memmodel.Read
				if i%63 == 0 {
					mode = memmodel.Write
				}
				return append(buf[:0], Access{Array: 1, Mode: mode})
			},
		},
		{
			name:   "fig9-stream",
			arrays: 16,
			// The Fig. 9 scheduling-overhead probe: 16 arrays touched
			// round-robin, each CE read-writing one of them.
			accs: func(i int, buf []Access) []Access {
				return append(buf[:0], Access{Array: ArrayID(1 + i%16), Mode: memmodel.ReadWrite})
			},
		},
		{
			name:   "diamond",
			arrays: 8,
			// Fork-join over 8 arrays: a scatter writer, 8 independent
			// read-writers, a gathering reader of all 8.
			accs: func(i int, buf []Access) []Access {
				switch i % 10 {
				case 0:
					buf = buf[:0]
					for a := 1; a <= 8; a++ {
						buf = append(buf, Access{Array: ArrayID(a), Mode: memmodel.Write})
					}
					return buf
				case 9:
					buf = buf[:0]
					for a := 1; a <= 8; a++ {
						buf = append(buf, Access{Array: ArrayID(a), Mode: memmodel.Read})
					}
					return buf
				default:
					return append(buf[:0], Access{Array: ArrayID(i % 10), Mode: memmodel.ReadWrite})
				}
			},
		},
	}
}

// BenchmarkDAGAdd measures Graph.Add throughput — the dependency-discovery
// half of the controller's per-CE hot path — across stream shapes.
func BenchmarkDAGAdd(b *testing.B) {
	for _, shape := range benchShapes() {
		b.Run(shape.name, func(b *testing.B) {
			var buf []Access
			b.ReportAllocs()
			g := New()
			for i := 0; i < b.N; i++ {
				// Bound graph growth so steady-state Add cost dominates,
				// not the ever-growing vertex map.
				if i%65536 == 0 {
					g = New()
				}
				accs := shape.accs(i, buf)
				ce := g.NewCE("bench", accs, nil)
				g.Add(ce)
			}
		})
	}
}

// BenchmarkDAGQueries covers the read-side helpers that back trace export
// and frontier maintenance.
func BenchmarkDAGQueries(b *testing.B) {
	g := New()
	var buf []Access
	shape := benchShapes()[3] // diamond
	for i := 0; i < 4096; i++ {
		accs := shape.accs(i, buf)
		g.Add(g.NewCE("bench", accs, nil))
	}
	b.Run(fmt.Sprintf("frontier-%d", g.Size()), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := g.Frontier(); len(got) == 0 {
				b.Fatal("empty frontier")
			}
		}
	})
}
