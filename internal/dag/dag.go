// Package dag implements GrOUT's Computational Element (CE) dependency
// graph. A CE wraps a kernel launch or a host read/write on a
// framework-managed array (paper §IV-B). As the host program submits CEs,
// the graph derives true dependencies from array access modes (RAW, WAR,
// WAW), filters redundant edges (if B already depends on A, a new CE
// depending on both only links to B), and maintains the frontier — the set
// of CEs a future submission can still depend on.
//
// The same structure serves as the Controller's Global DAG and each
// Worker's Local DAG (paper Algorithms 1 and 2).
package dag

import (
	"fmt"
	"sort"
	"strings"

	"grout/internal/memmodel"
)

// ArrayID identifies a framework-managed array, globally across the
// cluster.
type ArrayID int64

// CEID identifies a Computational Element in submission order.
type CEID int64

// Access records that a CE touches an array with a given mode.
type Access struct {
	Array ArrayID
	Mode  memmodel.AccessMode
}

// CE is a Computational Element: the unit the scheduler places on nodes
// and streams. Payload carries runtime-specific data (kernel invocation,
// host-op descriptor) opaque to the graph.
type CE struct {
	ID       CEID
	Label    string
	Accesses []Access
	Payload  any
}

func (ce *CE) String() string {
	return fmt.Sprintf("CE%d(%s)", ce.ID, ce.Label)
}

// Vertex is a CE plus its graph linkage.
type Vertex struct {
	CE       *CE
	parents  map[CEID]*Vertex
	children map[CEID]*Vertex
}

// Parents returns the vertex's direct ancestors, sorted by CE ID.
func (v *Vertex) Parents() []*Vertex { return sortedVertices(v.parents) }

// Children returns the vertex's direct descendants, sorted by CE ID.
func (v *Vertex) Children() []*Vertex { return sortedVertices(v.children) }

func sortedVertices(m map[CEID]*Vertex) []*Vertex {
	out := make([]*Vertex, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CE.ID < out[j].CE.ID })
	return out
}

// arrayState tracks, per array, the CE that last wrote it and the readers
// since that write — exactly the live accessors a new CE can conflict
// with.
type arrayState struct {
	lastWriter *Vertex
	readers    map[CEID]*Vertex
}

// Graph is the CE dependency DAG. The zero value is not usable; call New.
type Graph struct {
	vertices map[CEID]*Vertex
	arrays   map[ArrayID]*arrayState
	nextID   CEID
	edges    int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		vertices: make(map[CEID]*Vertex),
		arrays:   make(map[ArrayID]*arrayState),
		nextID:   1,
	}
}

// Size reports the number of CEs in the graph.
func (g *Graph) Size() int { return len(g.vertices) }

// Edges reports the number of dependency edges (after redundancy
// filtering).
func (g *Graph) Edges() int { return g.edges }

// Vertex returns the vertex for a CE ID, or nil.
func (g *Graph) Vertex(id CEID) *Vertex { return g.vertices[id] }

// NewCE allocates a CE with the next submission ID. The CE is not yet in
// the graph; pass it to Add.
func (g *Graph) NewCE(label string, accesses []Access, payload any) *CE {
	ce := &CE{ID: g.nextID, Label: label, Accesses: accesses, Payload: payload}
	g.nextID++
	return ce
}

// Add inserts a CE into the graph, computes its dependencies against the
// frontier, filters redundant edges and updates the frontier (the
// dependency half of paper Algorithm 1). It returns the CE's direct
// ancestors after filtering, sorted by ID.
func (g *Graph) Add(ce *CE) []*Vertex {
	if _, dup := g.vertices[ce.ID]; dup {
		panic(fmt.Sprintf("dag: duplicate CE %d", ce.ID))
	}
	v := &Vertex{CE: ce, parents: make(map[CEID]*Vertex), children: make(map[CEID]*Vertex)}

	// Gather ancestors from per-array live accessors.
	ancestors := make(map[CEID]*Vertex)
	for _, acc := range ce.Accesses {
		st := g.arrays[acc.Array]
		if st == nil {
			continue
		}
		if acc.Mode.Reads() && st.lastWriter != nil {
			ancestors[st.lastWriter.CE.ID] = st.lastWriter // RAW
		}
		if acc.Mode.Writes() {
			if st.lastWriter != nil {
				ancestors[st.lastWriter.CE.ID] = st.lastWriter // WAW
			}
			for id, r := range st.readers {
				ancestors[id] = r // WAR
			}
		}
	}
	delete(ancestors, ce.ID)

	// filterRedundant: drop any ancestor reachable from another ancestor
	// (paper: "A and B have dependencies against a new CE called C, but B
	// depends on A" — keep only B).
	filtered := g.filterRedundant(ancestors)

	// addEdges
	for _, p := range filtered {
		p.children[ce.ID] = v
		v.parents[p.CE.ID] = p
		g.edges++
	}
	g.vertices[ce.ID] = v

	// updateFrontier: refresh per-array live accessors.
	for _, acc := range ce.Accesses {
		st := g.arrays[acc.Array]
		if st == nil {
			st = &arrayState{readers: make(map[CEID]*Vertex)}
			g.arrays[acc.Array] = st
		}
		if acc.Mode.Writes() {
			st.lastWriter = v
			st.readers = make(map[CEID]*Vertex)
		}
		if acc.Mode.Reads() && !acc.Mode.Writes() {
			st.readers[ce.ID] = v
		}
	}

	return sortedVertices(toMap(filtered))
}

func toMap(vs []*Vertex) map[CEID]*Vertex {
	m := make(map[CEID]*Vertex, len(vs))
	for _, v := range vs {
		m[v.CE.ID] = v
	}
	return m
}

// filterRedundant removes ancestors that are transitive ancestors of
// other ancestors: an edge to A is redundant if some other candidate B can
// reach A through the DAG.
func (g *Graph) filterRedundant(cands map[CEID]*Vertex) []*Vertex {
	if len(cands) <= 1 {
		out := make([]*Vertex, 0, len(cands))
		for _, v := range cands {
			out = append(out, v)
		}
		return out
	}
	var out []*Vertex
	for id, v := range cands {
		redundant := false
		for otherID, other := range cands {
			if otherID == id {
				continue
			}
			if g.reaches(other, id) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, v)
		}
	}
	return out
}

// reaches reports whether target is an ancestor of (reachable backwards
// from) from. Dependencies always point from ancestor to descendant, and
// descendants have larger IDs, so the walk prunes on ID.
func (g *Graph) reaches(from *Vertex, target CEID) bool {
	if from.CE.ID <= target {
		return false
	}
	seen := map[CEID]bool{from.CE.ID: true}
	stack := []*Vertex{from}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for id, p := range v.parents {
			if id == target {
				return true
			}
			if !seen[id] && id > target {
				seen[id] = true
				stack = append(stack, p)
			}
		}
	}
	return false
}

// Frontier returns the CEs a future submission could depend on: every
// array's last writer and post-write readers, deduplicated and sorted.
func (g *Graph) Frontier() []*Vertex {
	set := make(map[CEID]*Vertex)
	for _, st := range g.arrays {
		if st.lastWriter != nil {
			set[st.lastWriter.CE.ID] = st.lastWriter
		}
		for id, r := range st.readers {
			set[id] = r
		}
	}
	return sortedVertices(set)
}

// TopoOrder returns all CEs in a topological order (submission-ID order is
// one, since edges only point forward; this validates that invariant).
func (g *Graph) TopoOrder() ([]*CE, error) {
	ids := make([]CEID, 0, len(g.vertices))
	for id := range g.vertices {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []*CE
	for _, id := range ids {
		v := g.vertices[id]
		for pid := range v.parents {
			if pid >= id {
				return nil, fmt.Errorf("dag: edge %d -> %d violates submission order", pid, id)
			}
		}
		out = append(out, v.CE)
	}
	return out, nil
}

// Roots returns CEs with no parents, sorted by ID.
func (g *Graph) Roots() []*Vertex {
	set := make(map[CEID]*Vertex)
	for id, v := range g.vertices {
		if len(v.parents) == 0 {
			set[id] = v
		}
	}
	return sortedVertices(set)
}

// MaxDepth returns the length (in vertices) of the longest dependency
// chain — the critical path of the workload's structure.
func (g *Graph) MaxDepth() int {
	depth := make(map[CEID]int, len(g.vertices))
	ids := make([]CEID, 0, len(g.vertices))
	for id := range g.vertices {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	max := 0
	for _, id := range ids {
		v := g.vertices[id]
		d := 1
		for pid := range v.parents {
			if depth[pid]+1 > d {
				d = depth[pid] + 1
			}
		}
		depth[id] = d
		if d > max {
			max = d
		}
	}
	return max
}

// DOT renders the graph in Graphviz format (the paper's Figure 5 shows
// exactly these CE-dependency DAGs). Vertices are labelled with their CE
// label and ID.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=circle fontsize=10];\n", name)
	ids := make([]CEID, 0, len(g.vertices))
	for id := range g.vertices {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		v := g.vertices[id]
		fmt.Fprintf(&b, "  n%d [label=%q];\n", id, fmt.Sprintf("%s\n#%d", v.CE.Label, id))
	}
	for _, id := range ids {
		v := g.vertices[id]
		for _, child := range v.Children() {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", id, child.CE.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
