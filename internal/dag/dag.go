// Package dag implements GrOUT's Computational Element (CE) dependency
// graph. A CE wraps a kernel launch or a host read/write on a
// framework-managed array (paper §IV-B). As the host program submits CEs,
// the graph derives true dependencies from array access modes (RAW, WAR,
// WAW), filters redundant edges (if B already depends on A, a new CE
// depending on both only links to B), and maintains the frontier — the set
// of CEs a future submission can still depend on.
//
// The same structure serves as the Controller's Global DAG and each
// Worker's Local DAG (paper Algorithms 1 and 2).
//
// Add is the scheduler's per-CE hot path (the paper's Figure 9 measures
// the surrounding overhead), so it is written to be allocation-free in the
// steady state: candidate gathering and the redundant-edge filter use
// epoch-stamped marks on the vertices plus reusable scratch buffers
// instead of per-call maps, and redundancy is resolved with one shared
// backward traversal per Add rather than one DFS per candidate pair.
package dag

import (
	"fmt"
	"sort"
	"strings"

	"grout/internal/memmodel"
)

// ArrayID identifies a framework-managed array, globally across the
// cluster.
type ArrayID int64

// CEID identifies a Computational Element in submission order.
type CEID int64

// Access records that a CE touches an array with a given mode.
type Access struct {
	Array ArrayID
	Mode  memmodel.AccessMode
}

// CE is a Computational Element: the unit the scheduler places on nodes
// and streams. Payload carries runtime-specific data (kernel invocation,
// host-op descriptor) opaque to the graph.
type CE struct {
	ID       CEID
	Label    string
	Accesses []Access
	Payload  any
}

func (ce *CE) String() string {
	return fmt.Sprintf("CE%d(%s)", ce.ID, ce.Label)
}

// Vertex is a CE plus its graph linkage. Both adjacency slices are
// maintained in ascending CE-ID order: parents are linked sorted at Add
// time, and children arrive in submission order, whose IDs only grow.
type Vertex struct {
	CE       *CE
	parents  []*Vertex
	children []*Vertex

	// candMark and seenMark are epoch stamps replacing per-Add scratch
	// maps: a mark equals the graph's current epoch iff the vertex is a
	// dependency candidate / was visited by the redundancy traversal of
	// the Add in progress.
	candMark uint64
	seenMark uint64
}

// Parents returns a copy of the vertex's direct ancestors, sorted by CE
// ID.
func (v *Vertex) Parents() []*Vertex {
	return append([]*Vertex(nil), v.parents...)
}

// Children returns a copy of the vertex's direct descendants, sorted by CE
// ID.
func (v *Vertex) Children() []*Vertex {
	return append([]*Vertex(nil), v.children...)
}

// NumParents reports the number of direct ancestors without copying.
func (v *Vertex) NumParents() int { return len(v.parents) }

// NumChildren reports the number of direct descendants without copying.
func (v *Vertex) NumChildren() int { return len(v.children) }

// EachParent visits the direct ancestors in ascending CE-ID order without
// allocating; returning false stops the walk. This is the iteration path
// hot loops use instead of Parents().
func (v *Vertex) EachParent(f func(*Vertex) bool) {
	for _, p := range v.parents {
		if !f(p) {
			return
		}
	}
}

// EachChild visits the direct descendants in ascending CE-ID order without
// allocating; returning false stops the walk.
func (v *Vertex) EachChild(f func(*Vertex) bool) {
	for _, c := range v.children {
		if !f(c) {
			return
		}
	}
}

func sortedVertices(m map[CEID]*Vertex) []*Vertex {
	out := make([]*Vertex, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CE.ID < out[j].CE.ID })
	return out
}

// arrayState tracks, per array, the CE that last wrote it and the readers
// since that write — exactly the live accessors a new CE can conflict
// with.
type arrayState struct {
	lastWriter *Vertex
	readers    map[CEID]*Vertex
}

// Graph is the CE dependency DAG. The zero value is not usable; call New.
type Graph struct {
	vertices map[CEID]*Vertex
	arrays   map[ArrayID]*arrayState
	nextID   CEID
	edges    int

	// epoch validates the vertices' candMark/seenMark stamps; it advances
	// once per Add, implicitly clearing every mark in O(1).
	epoch uint64
	// scratchCands and scratchStack are reused across Adds so the hot
	// path performs no per-call slice or map allocation.
	scratchCands []*Vertex
	scratchStack []*Vertex
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		vertices: make(map[CEID]*Vertex),
		arrays:   make(map[ArrayID]*arrayState),
		nextID:   1,
	}
}

// Size reports the number of CEs in the graph.
func (g *Graph) Size() int { return len(g.vertices) }

// Edges reports the number of dependency edges (after redundancy
// filtering).
func (g *Graph) Edges() int { return g.edges }

// Vertex returns the vertex for a CE ID, or nil.
func (g *Graph) Vertex(id CEID) *Vertex { return g.vertices[id] }

// LastWriter returns the CE that most recently wrote the array, or nil if
// nothing in the graph has written it. Failover uses it to name the
// producer of lost data in diagnostics.
func (g *Graph) LastWriter(id ArrayID) *CE {
	if st := g.arrays[id]; st != nil && st.lastWriter != nil {
		return st.lastWriter.CE
	}
	return nil
}

// NewCE allocates a CE with the next submission ID. The CE is not yet in
// the graph; pass it to Add.
func (g *Graph) NewCE(label string, accesses []Access, payload any) *CE {
	ce := &CE{ID: g.nextID, Label: label, Accesses: accesses, Payload: payload}
	g.nextID++
	return ce
}

// Add inserts a CE into the graph, computes its dependencies against the
// frontier, filters redundant edges and updates the frontier (the
// dependency half of paper Algorithm 1). It returns the CE's direct
// ancestors after filtering, sorted by ID.
//
// The returned slice is the vertex's own parent list: callers must treat
// it as read-only. It stays valid across later Adds.
func (g *Graph) Add(ce *CE) []*Vertex {
	if _, dup := g.vertices[ce.ID]; dup {
		panic(fmt.Sprintf("dag: duplicate CE %d", ce.ID))
	}
	v := &Vertex{CE: ce}
	g.epoch++

	// Gather candidate ancestors from per-array live accessors,
	// deduplicated by epoch mark.
	cands := g.scratchCands[:0]
	addCand := func(c *Vertex) {
		if c.candMark != g.epoch {
			c.candMark = g.epoch
			cands = append(cands, c)
		}
	}
	for _, acc := range ce.Accesses {
		st := g.arrays[acc.Array]
		if st == nil {
			continue
		}
		if acc.Mode.Reads() && st.lastWriter != nil {
			addCand(st.lastWriter) // RAW
		}
		if acc.Mode.Writes() {
			if st.lastWriter != nil {
				addCand(st.lastWriter) // WAW
			}
			for _, r := range st.readers {
				addCand(r) // WAR
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].CE.ID < cands[j].CE.ID })

	// filterRedundant: drop any candidate reachable from another
	// candidate (paper: "A and B have dependencies against a new CE
	// called C, but B depends on A" — keep only B). One backward
	// traversal seeded at every candidate's parents marks exactly the
	// strict ancestors of candidates; a marked candidate is redundant.
	// Edges point to smaller IDs, so the walk prunes below the smallest
	// candidate.
	if len(cands) > 1 {
		minID := cands[0].CE.ID
		stack := g.scratchStack[:0]
		visit := func(p *Vertex) {
			if p.CE.ID >= minID && p.seenMark != g.epoch {
				p.seenMark = g.epoch
				stack = append(stack, p)
			}
		}
		for _, c := range cands {
			for _, p := range c.parents {
				visit(p)
			}
		}
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range top.parents {
				visit(p)
			}
		}
		g.scratchStack = stack[:0]
		kept := cands[:0]
		for _, c := range cands {
			if c.seenMark != g.epoch {
				kept = append(kept, c)
			}
		}
		cands = kept
	}

	// addEdges: the filtered candidates become the vertex's parent list
	// (already sorted ascending).
	if len(cands) > 0 {
		v.parents = make([]*Vertex, len(cands))
		copy(v.parents, cands)
		for _, p := range cands {
			p.children = append(p.children, v)
		}
		g.edges += len(cands)
	}
	g.scratchCands = cands[:0]
	g.vertices[ce.ID] = v

	// updateFrontier: refresh per-array live accessors.
	for _, acc := range ce.Accesses {
		st := g.arrays[acc.Array]
		if st == nil {
			st = &arrayState{readers: make(map[CEID]*Vertex)}
			g.arrays[acc.Array] = st
		}
		if acc.Mode.Writes() {
			st.lastWriter = v
			clear(st.readers)
		}
		if acc.Mode.Reads() && !acc.Mode.Writes() {
			st.readers[ce.ID] = v
		}
	}

	return v.parents
}

// reaches reports whether target is an ancestor of (reachable backwards
// from) from. Dependencies always point from ancestor to descendant, and
// descendants have larger IDs, so the walk prunes on ID. It is used by
// invariant checks; Add's redundancy filter uses the shared-mark
// traversal instead.
func (g *Graph) reaches(from *Vertex, target CEID) bool {
	if from.CE.ID <= target {
		return false
	}
	seen := map[CEID]bool{from.CE.ID: true}
	stack := []*Vertex{from}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range v.parents {
			id := p.CE.ID
			if id == target {
				return true
			}
			if !seen[id] && id > target {
				seen[id] = true
				stack = append(stack, p)
			}
		}
	}
	return false
}

// Frontier returns the CEs a future submission could depend on: every
// array's last writer and post-write readers, deduplicated and sorted.
func (g *Graph) Frontier() []*Vertex {
	set := make(map[CEID]*Vertex)
	for _, st := range g.arrays {
		if st.lastWriter != nil {
			set[st.lastWriter.CE.ID] = st.lastWriter
		}
		for id, r := range st.readers {
			set[id] = r
		}
	}
	return sortedVertices(set)
}

// TopoOrder returns all CEs in a topological order (submission-ID order is
// one, since edges only point forward; this validates that invariant).
func (g *Graph) TopoOrder() ([]*CE, error) {
	ids := make([]CEID, 0, len(g.vertices))
	for id := range g.vertices {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []*CE
	for _, id := range ids {
		v := g.vertices[id]
		for _, p := range v.parents {
			if p.CE.ID >= id {
				return nil, fmt.Errorf("dag: edge %d -> %d violates submission order", p.CE.ID, id)
			}
		}
		out = append(out, v.CE)
	}
	return out, nil
}

// Roots returns CEs with no parents, sorted by ID.
func (g *Graph) Roots() []*Vertex {
	set := make(map[CEID]*Vertex)
	for id, v := range g.vertices {
		if len(v.parents) == 0 {
			set[id] = v
		}
	}
	return sortedVertices(set)
}

// MaxDepth returns the length (in vertices) of the longest dependency
// chain — the critical path of the workload's structure.
func (g *Graph) MaxDepth() int {
	depth := make(map[CEID]int, len(g.vertices))
	ids := make([]CEID, 0, len(g.vertices))
	for id := range g.vertices {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	max := 0
	for _, id := range ids {
		v := g.vertices[id]
		d := 1
		for _, p := range v.parents {
			if depth[p.CE.ID]+1 > d {
				d = depth[p.CE.ID] + 1
			}
		}
		depth[id] = d
		if d > max {
			max = d
		}
	}
	return max
}

// DOT renders the graph in Graphviz format (the paper's Figure 5 shows
// exactly these CE-dependency DAGs). Vertices are labelled with their CE
// label and ID.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=circle fontsize=10];\n", name)
	ids := make([]CEID, 0, len(g.vertices))
	for id := range g.vertices {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		v := g.vertices[id]
		fmt.Fprintf(&b, "  n%d [label=%q];\n", id, fmt.Sprintf("%s\n#%d", v.CE.Label, id))
	}
	for _, id := range ids {
		for _, child := range g.vertices[id].children {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", id, child.CE.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
