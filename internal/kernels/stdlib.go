package kernels

import (
	"fmt"
	"math"

	"grout/internal/memmodel"
)

// mustSig parses a signature known at compile time.
func mustSig(s string) Signature {
	sig, err := ParseSignature(s)
	if err != nil {
		panic(err)
	}
	return sig
}

func acc(param int, mode memmodel.AccessMode, pat memmodel.Pattern, frac float64, passes int) memmodel.Access {
	return memmodel.Access{Param: param, Mode: mode, Pattern: pat, Fraction: frac, Passes: passes}
}

// stdlib returns the native kernel library: the numeric building blocks of
// the paper's workload suite (Black–Scholes, the MLE ensemble, CG, MV).
func stdlib() []*Def {
	return []*Def{
		fillDef(), copyDef(), axpyDef(), scaleDef(), dotDef(),
		gemvDef(), blackScholesDef(), reluDef(), softmaxDef(),
		combineArgmaxDef(), spmvCSRDef(), l2normDef(),
		axpySDef(), xpaySDef(), divSDef(), rowdotDef(),
		addSDef(), gather2Def(), cgMatgenDef(),
		stencil3Def(), biasReluDef(),
	}
}

// stencil3(out, in, n): out[i] = (in[i-1] + in[i] + in[i+1]) / 3 with
// clamped borders — the 1-D blur used by the image-pipeline workload.
// Strided-ish neighbours still coalesce; the pattern is sequential.
func stencil3Def() *Def {
	return &Def{
		Name: "stencil3",
		Sig:  mustSig("pointer float, const pointer float, sint32"),
		CostOf: func(m []ArgMeta) Cost {
			return Cost{Elements: int64(m[2].Scalar), OpsPerElement: 4}
		},
		AccessOf: func(m []ArgMeta) []memmodel.Access {
			return []memmodel.Access{
				acc(0, memmodel.Write, memmodel.Sequential, 1, 1),
				acc(1, memmodel.Read, memmodel.Sequential, 1, 1),
			}
		},
		Run: func(a []Arg) error {
			n := a[2].Int()
			if n > a[0].Buf.Len() || n > a[1].Buf.Len() {
				return fmt.Errorf("stencil3: n %d exceeds buffers", n)
			}
			in, out := a[1].Buf, a[0].Buf
			for i := 0; i < n; i++ {
				lo, hi := i-1, i+1
				if lo < 0 {
					lo = 0
				}
				if hi >= n {
					hi = n - 1
				}
				out.Set(i, (in.At(lo)+in.At(i)+in.At(hi))/3)
			}
			return nil
		},
	}
}

// bias_relu(x, bias, n): x[i] = max(0, x[i] + bias[0]) — the activation
// step of the inference workload's dense layers.
func biasReluDef() *Def {
	return &Def{
		Name: "bias_relu",
		Sig:  mustSig("pointer float, const pointer float, sint32"),
		CostOf: func(m []ArgMeta) Cost {
			return Cost{Elements: int64(m[2].Scalar), OpsPerElement: 2}
		},
		AccessOf: func(m []ArgMeta) []memmodel.Access {
			return []memmodel.Access{
				acc(0, memmodel.ReadWrite, memmodel.Sequential, 1, 1),
				acc(1, memmodel.Read, memmodel.Broadcast, 1, 1),
			}
		},
		Run: func(a []Arg) error {
			n := a[2].Int()
			b := a[1].Buf.At(0)
			for i := 0; i < n; i++ {
				v := a[0].Buf.At(i) + b
				if v < 0 {
					v = 0
				}
				a[0].Buf.Set(i, v)
			}
			return nil
		},
	}
}

// cg_matgen(A, rowOffset, rows, n): generates a row block of the
// diagonally dominant SPD test matrix directly on the device
// (A[i][j] = 1/(1+|i-j|) off-diagonal, n on the diagonal). Device-side
// generation is the common benchmark idiom — and, because the CE is a
// write-only full overwrite, the scheduler's exploration phase spreads the
// matrix blocks across nodes without shipping them from the controller.
func cgMatgenDef() *Def {
	return &Def{
		Name: "cg_matgen",
		Sig:  mustSig("pointer float, sint32, sint32, sint32"),
		CostOf: func(m []ArgMeta) Cost {
			rows, n := int64(m[2].Scalar), int64(m[3].Scalar)
			return Cost{Elements: rows * n, OpsPerElement: 4}
		},
		AccessOf: func(m []ArgMeta) []memmodel.Access {
			return []memmodel.Access{acc(0, memmodel.Write, memmodel.Sequential, 1, 1)}
		},
		Run: func(a []Arg) error {
			rowOffset, rows, n := int64(a[1].Scalar), int64(a[2].Scalar), int64(a[3].Scalar)
			if rows*n > int64(a[0].Buf.Len()) {
				return fmt.Errorf("cg_matgen: %dx%d exceeds buffer %d", rows, n, a[0].Buf.Len())
			}
			for r := int64(0); r < rows; r++ {
				gi := rowOffset + r
				for j := int64(0); j < n; j++ {
					d := gi - j
					if d < 0 {
						d = -d
					}
					v := 1.0 / float64(1+d)
					if gi == j {
						v = float64(n)
					}
					a[0].Buf.Set(int(r*n+j), v)
				}
			}
			return nil
		},
	}
}

// add_s(out, a, b): out[0] = a[0] + b[0] — reduction of per-partition
// partial scalars.
func addSDef() *Def {
	return &Def{
		Name: "add_s",
		Sig:  mustSig("pointer float, const pointer float, const pointer float"),
		CostOf: func(m []ArgMeta) Cost {
			return Cost{Elements: 1, OpsPerElement: 1}
		},
		AccessOf: func(m []ArgMeta) []memmodel.Access {
			return []memmodel.Access{
				acc(0, memmodel.Write, memmodel.Sequential, 1, 1),
				acc(1, memmodel.Read, memmodel.Sequential, 1, 1),
				acc(2, memmodel.Read, memmodel.Sequential, 1, 1),
			}
		},
		Run: func(a []Arg) error {
			a[0].Buf.Set(0, a[1].Buf.At(0)+a[2].Buf.At(0))
			return nil
		},
	}
}

// gather2(dst, src0, src1, n0, n1): dst = [src0; src1] — reassembles a
// row-partitioned vector; the join CE of the paper's CG DAG.
func gather2Def() *Def {
	return &Def{
		Name: "gather2",
		Sig:  mustSig("pointer float, const pointer float, const pointer float, sint32, sint32"),
		CostOf: func(m []ArgMeta) Cost {
			return Cost{Elements: int64(m[3].Scalar) + int64(m[4].Scalar), OpsPerElement: 1}
		},
		AccessOf: func(m []ArgMeta) []memmodel.Access {
			return []memmodel.Access{
				acc(0, memmodel.Write, memmodel.Sequential, 1, 1),
				acc(1, memmodel.Read, memmodel.Sequential, 1, 1),
				acc(2, memmodel.Read, memmodel.Sequential, 1, 1),
			}
		},
		Run: func(a []Arg) error {
			n0, n1 := a[3].Int(), a[4].Int()
			if n0+n1 > a[0].Buf.Len() {
				return fmt.Errorf("gather2: %d+%d exceeds destination %d", n0, n1, a[0].Buf.Len())
			}
			for i := 0; i < n0; i++ {
				a[0].Buf.Set(i, a[1].Buf.At(i))
			}
			for i := 0; i < n1; i++ {
				a[0].Buf.Set(n0+i, a[2].Buf.At(i))
			}
			return nil
		},
	}
}

// axpy_s(y, x, coef, sign, n): y[i] += sign*coef[0]*x[i]. The coefficient
// lives in a one-element device array so iterative solvers (CG) never
// synchronize scalars back to the host.
func axpySDef() *Def {
	return &Def{
		Name: "axpy_s",
		Sig:  mustSig("pointer float, const pointer float, const pointer float, float, sint32"),
		CostOf: func(m []ArgMeta) Cost {
			return Cost{Elements: int64(m[4].Scalar), OpsPerElement: 2}
		},
		AccessOf: func(m []ArgMeta) []memmodel.Access {
			return []memmodel.Access{
				acc(0, memmodel.ReadWrite, memmodel.Sequential, 1, 1),
				acc(1, memmodel.Read, memmodel.Sequential, 1, 1),
				acc(2, memmodel.Read, memmodel.Broadcast, 1, 1),
			}
		},
		Run: func(a []Arg) error {
			n, sign := a[4].Int(), a[3].Scalar
			coef := a[2].Buf.At(0) * sign
			for i := 0; i < n; i++ {
				a[0].Buf.Set(i, a[0].Buf.At(i)+coef*a[1].Buf.At(i))
			}
			return nil
		},
	}
}

// xpay_s(p, r, coef, n): p[i] = r[i] + coef[0]*p[i] — CG's direction
// update.
func xpaySDef() *Def {
	return &Def{
		Name: "xpay_s",
		Sig:  mustSig("pointer float, const pointer float, const pointer float, sint32"),
		CostOf: func(m []ArgMeta) Cost {
			return Cost{Elements: int64(m[3].Scalar), OpsPerElement: 2}
		},
		AccessOf: func(m []ArgMeta) []memmodel.Access {
			return []memmodel.Access{
				acc(0, memmodel.ReadWrite, memmodel.Sequential, 1, 1),
				acc(1, memmodel.Read, memmodel.Sequential, 1, 1),
				acc(2, memmodel.Read, memmodel.Broadcast, 1, 1),
			}
		},
		Run: func(a []Arg) error {
			n := a[3].Int()
			coef := a[2].Buf.At(0)
			for i := 0; i < n; i++ {
				a[0].Buf.Set(i, a[1].Buf.At(i)+coef*a[0].Buf.At(i))
			}
			return nil
		},
	}
}

// div_s(out, num, den): out[0] = num[0]/den[0] — scalar plumbing for CG's
// alpha and beta, kept on device.
func divSDef() *Def {
	return &Def{
		Name: "div_s",
		Sig:  mustSig("pointer float, const pointer float, const pointer float"),
		CostOf: func(m []ArgMeta) Cost {
			return Cost{Elements: 1, OpsPerElement: 1}
		},
		AccessOf: func(m []ArgMeta) []memmodel.Access {
			return []memmodel.Access{
				acc(0, memmodel.Write, memmodel.Sequential, 1, 1),
				acc(1, memmodel.Read, memmodel.Sequential, 1, 1),
				acc(2, memmodel.Read, memmodel.Sequential, 1, 1),
			}
		},
		Run: func(a []Arg) error {
			num, den := a[1].Buf.At(0), a[2].Buf.At(0)
			if den == 0 {
				if num == 0 {
					// Converged iterative solvers divide 0 by 0 (CG's
					// beta once the residual underflows); the update
					// coefficient is then zero.
					a[0].Buf.Set(0, 0)
					return nil
				}
				return fmt.Errorf("div_s: division by zero")
			}
			a[0].Buf.Set(0, num/den)
			return nil
		},
	}
}

// rowdot(out, X, w, rows, features): out[r] = X[r,:]·w — the per-row
// scoring step of the MLE ensemble's pipelines. The feature matrix is
// gathered per-row in data-dependent order (categorical feature lookups),
// the canonical random-access UVM stressor; the weight vector is the
// FALL-style broadcast operand.
func rowdotDef() *Def {
	return &Def{
		Name: "rowdot",
		Sig:  mustSig("pointer float, const pointer float, const pointer float, sint32, sint32"),
		CostOf: func(m []ArgMeta) Cost {
			rows, features := int64(m[3].Scalar), int64(m[4].Scalar)
			return Cost{Elements: rows * features, OpsPerElement: 2}
		},
		AccessOf: func(m []ArgMeta) []memmodel.Access {
			return []memmodel.Access{
				acc(0, memmodel.Write, memmodel.Sequential, 1, 1),
				acc(1, memmodel.Read, memmodel.Random, 1, 1),
				acc(2, memmodel.Read, memmodel.Broadcast, 1, 1),
			}
		},
		Run: func(a []Arg) error {
			rows, features := a[3].Int(), a[4].Int()
			if rows*features > a[1].Buf.Len() {
				return fmt.Errorf("rowdot: %dx%d exceeds matrix buffer %d", rows, features, a[1].Buf.Len())
			}
			X, w, out := a[1].Buf, a[2].Buf, a[0].Buf
			for r := 0; r < rows; r++ {
				var sum float64
				base := r * features
				for f := 0; f < features; f++ {
					sum += X.At(base+f) * w.At(f)
				}
				out.Set(r, sum)
			}
			return nil
		},
	}
}

// fill(x, value, n): x[i] = value.
func fillDef() *Def {
	return &Def{
		Name: "fill",
		Sig:  mustSig("pointer float, float, sint32"),
		CostOf: func(m []ArgMeta) Cost {
			return Cost{Elements: int64(m[2].Scalar), OpsPerElement: 1}
		},
		AccessOf: func(m []ArgMeta) []memmodel.Access {
			return []memmodel.Access{acc(0, memmodel.Write, memmodel.Sequential, 1, 1)}
		},
		Run: func(a []Arg) error {
			n := a[2].Int()
			if n > a[0].Buf.Len() {
				return fmt.Errorf("fill: n %d exceeds buffer %d", n, a[0].Buf.Len())
			}
			v := a[1].Scalar
			for i := 0; i < n; i++ {
				a[0].Buf.Set(i, v)
			}
			return nil
		},
	}
}

// copy(dst, src, n): dst[i] = src[i].
func copyDef() *Def {
	return &Def{
		Name: "copy",
		Sig:  mustSig("pointer float, const pointer float, sint32"),
		CostOf: func(m []ArgMeta) Cost {
			return Cost{Elements: int64(m[2].Scalar), OpsPerElement: 1}
		},
		AccessOf: func(m []ArgMeta) []memmodel.Access {
			return []memmodel.Access{
				acc(0, memmodel.Write, memmodel.Sequential, 1, 1),
				acc(1, memmodel.Read, memmodel.Sequential, 1, 1),
			}
		},
		Run: func(a []Arg) error {
			n := a[2].Int()
			for i := 0; i < n; i++ {
				a[0].Buf.Set(i, a[1].Buf.At(i))
			}
			return nil
		},
	}
}

// axpy(y, x, alpha, n): y[i] += alpha*x[i].
func axpyDef() *Def {
	return &Def{
		Name: "axpy",
		Sig:  mustSig("pointer float, const pointer float, float, sint32"),
		CostOf: func(m []ArgMeta) Cost {
			return Cost{Elements: int64(m[3].Scalar), OpsPerElement: 2}
		},
		AccessOf: func(m []ArgMeta) []memmodel.Access {
			return []memmodel.Access{
				acc(0, memmodel.ReadWrite, memmodel.Sequential, 1, 1),
				acc(1, memmodel.Read, memmodel.Sequential, 1, 1),
			}
		},
		Run: func(a []Arg) error {
			n, alpha := a[3].Int(), a[2].Scalar
			for i := 0; i < n; i++ {
				a[0].Buf.Set(i, a[0].Buf.At(i)+alpha*a[1].Buf.At(i))
			}
			return nil
		},
	}
}

// scale(y, x, alpha, n): y[i] = alpha*x[i] (y may alias x logically).
func scaleDef() *Def {
	return &Def{
		Name: "scale",
		Sig:  mustSig("pointer float, const pointer float, float, sint32"),
		CostOf: func(m []ArgMeta) Cost {
			return Cost{Elements: int64(m[3].Scalar), OpsPerElement: 1}
		},
		AccessOf: func(m []ArgMeta) []memmodel.Access {
			return []memmodel.Access{
				acc(0, memmodel.Write, memmodel.Sequential, 1, 1),
				acc(1, memmodel.Read, memmodel.Sequential, 1, 1),
			}
		},
		Run: func(a []Arg) error {
			n, alpha := a[3].Int(), a[2].Scalar
			for i := 0; i < n; i++ {
				a[0].Buf.Set(i, alpha*a[1].Buf.At(i))
			}
			return nil
		},
	}
}

// dot(out, x, y, n): out[0] = sum x[i]*y[i].
func dotDef() *Def {
	return &Def{
		Name: "dot",
		Sig:  mustSig("pointer float, const pointer float, const pointer float, sint32"),
		CostOf: func(m []ArgMeta) Cost {
			return Cost{Elements: int64(m[3].Scalar), OpsPerElement: 2}
		},
		AccessOf: func(m []ArgMeta) []memmodel.Access {
			return []memmodel.Access{
				acc(0, memmodel.Write, memmodel.Sequential, 1, 1),
				acc(1, memmodel.Read, memmodel.Sequential, 1, 1),
				acc(2, memmodel.Read, memmodel.Sequential, 1, 1),
			}
		},
		Run: func(a []Arg) error {
			n := a[3].Int()
			var sum float64
			for i := 0; i < n; i++ {
				sum += a[1].Buf.At(i) * a[2].Buf.At(i)
			}
			a[0].Buf.Set(0, sum)
			return nil
		},
	}
}

// l2norm(out, x, n): out[0] = ||x||_2.
func l2normDef() *Def {
	return &Def{
		Name: "l2norm",
		Sig:  mustSig("pointer float, const pointer float, sint32"),
		CostOf: func(m []ArgMeta) Cost {
			return Cost{Elements: int64(m[2].Scalar), OpsPerElement: 2}
		},
		AccessOf: func(m []ArgMeta) []memmodel.Access {
			return []memmodel.Access{
				acc(0, memmodel.Write, memmodel.Sequential, 1, 1),
				acc(1, memmodel.Read, memmodel.Sequential, 1, 1),
			}
		},
		Run: func(a []Arg) error {
			n := a[2].Int()
			var sum float64
			for i := 0; i < n; i++ {
				v := a[1].Buf.At(i)
				sum += v * v
			}
			a[0].Buf.Set(0, math.Sqrt(sum))
			return nil
		},
	}
}

// gemv(y, A, x, rows, cols): y = A*x, A row-major rows×cols. The dense
// matrix streams sequentially; the input vector is re-read by every row —
// the broadcast/FALL pattern.
func gemvDef() *Def {
	return &Def{
		Name: "gemv",
		Sig:  mustSig("pointer float, const pointer float, const pointer float, sint32, sint32"),
		CostOf: func(m []ArgMeta) Cost {
			rows, cols := int64(m[3].Scalar), int64(m[4].Scalar)
			return Cost{Elements: rows * cols, OpsPerElement: 2}
		},
		AccessOf: func(m []ArgMeta) []memmodel.Access {
			return []memmodel.Access{
				acc(0, memmodel.Write, memmodel.Sequential, 1, 1),
				acc(1, memmodel.Read, memmodel.Sequential, 1, 1),
				acc(2, memmodel.Read, memmodel.Broadcast, 1, 1),
			}
		},
		Run: func(a []Arg) error {
			rows, cols := a[3].Int(), a[4].Int()
			if rows*cols > a[1].Buf.Len() {
				return fmt.Errorf("gemv: %dx%d exceeds matrix buffer %d", rows, cols, a[1].Buf.Len())
			}
			A, x, y := a[1].Buf, a[2].Buf, a[0].Buf
			for r := 0; r < rows; r++ {
				var sum float64
				base := r * cols
				for c := 0; c < cols; c++ {
					sum += A.At(base+c) * x.At(c)
				}
				y.Set(r, sum)
			}
			return nil
		},
	}
}

// blackscholes(call, put, spot, n): European option pricing with fixed
// strike/rate/volatility/expiry, matching the paper's Figure 1 workload.
func blackScholesDef() *Def {
	const (
		strike = 100.0
		rate   = 0.05
		vol    = 0.2
		expiry = 1.0
	)
	cnd := func(d float64) float64 { // cumulative normal distribution
		return 0.5 * math.Erfc(-d/math.Sqrt2)
	}
	return &Def{
		Name: "blackscholes",
		Sig:  mustSig("pointer float, pointer float, const pointer float, sint32"),
		CostOf: func(m []ArgMeta) Cost {
			return Cost{Elements: int64(m[3].Scalar), OpsPerElement: 60}
		},
		AccessOf: func(m []ArgMeta) []memmodel.Access {
			return []memmodel.Access{
				acc(0, memmodel.Write, memmodel.Sequential, 1, 1),
				acc(1, memmodel.Write, memmodel.Sequential, 1, 1),
				acc(2, memmodel.Read, memmodel.Sequential, 1, 1),
			}
		},
		Run: func(a []Arg) error {
			n := a[3].Int()
			call, put, spot := a[0].Buf, a[1].Buf, a[2].Buf
			for i := 0; i < n; i++ {
				s := spot.At(i)
				if s <= 0 {
					call.Set(i, 0)
					put.Set(i, strike*math.Exp(-rate*expiry))
					continue
				}
				d1 := (math.Log(s/strike) + (rate+vol*vol/2)*expiry) / (vol * math.Sqrt(expiry))
				d2 := d1 - vol*math.Sqrt(expiry)
				c := s*cnd(d1) - strike*math.Exp(-rate*expiry)*cnd(d2)
				p := strike*math.Exp(-rate*expiry)*cnd(-d2) - s*cnd(-d1)
				call.Set(i, c)
				put.Set(i, p)
			}
			return nil
		},
	}
}

// relu(x, n): x[i] = max(0, x[i]).
func reluDef() *Def {
	return &Def{
		Name: "relu",
		Sig:  mustSig("pointer float, sint32"),
		CostOf: func(m []ArgMeta) Cost {
			return Cost{Elements: int64(m[1].Scalar), OpsPerElement: 1}
		},
		AccessOf: func(m []ArgMeta) []memmodel.Access {
			return []memmodel.Access{acc(0, memmodel.ReadWrite, memmodel.Sequential, 1, 1)}
		},
		Run: func(a []Arg) error {
			n := a[1].Int()
			for i := 0; i < n; i++ {
				if a[0].Buf.At(i) < 0 {
					a[0].Buf.Set(i, 0)
				}
			}
			return nil
		},
	}
}

// softmax(x, n): in-place softmax.
func softmaxDef() *Def {
	return &Def{
		Name: "softmax",
		Sig:  mustSig("pointer float, sint32"),
		CostOf: func(m []ArgMeta) Cost {
			return Cost{Elements: int64(m[1].Scalar), OpsPerElement: 8}
		},
		AccessOf: func(m []ArgMeta) []memmodel.Access {
			return []memmodel.Access{acc(0, memmodel.ReadWrite, memmodel.Sequential, 1, 2)}
		},
		Run: func(a []Arg) error {
			n := a[1].Int()
			if n == 0 {
				return nil
			}
			max := a[0].Buf.At(0)
			for i := 1; i < n; i++ {
				if v := a[0].Buf.At(i); v > max {
					max = v
				}
			}
			var sum float64
			for i := 0; i < n; i++ {
				e := math.Exp(a[0].Buf.At(i) - max)
				a[0].Buf.Set(i, e)
				sum += e
			}
			for i := 0; i < n; i++ {
				a[0].Buf.Set(i, a[0].Buf.At(i)/sum)
			}
			return nil
		},
	}
}

// combine_argmax(out, a, b, n): out[i] = 1 if ensemble score of class 1
// wins, else 0 — the MLE ensemble's final vote between two pipelines.
func combineArgmaxDef() *Def {
	return &Def{
		Name: "combine_argmax",
		Sig:  mustSig("pointer float, const pointer float, const pointer float, sint32"),
		CostOf: func(m []ArgMeta) Cost {
			return Cost{Elements: int64(m[3].Scalar), OpsPerElement: 3}
		},
		AccessOf: func(m []ArgMeta) []memmodel.Access {
			return []memmodel.Access{
				acc(0, memmodel.Write, memmodel.Sequential, 1, 1),
				acc(1, memmodel.Read, memmodel.Sequential, 1, 1),
				acc(2, memmodel.Read, memmodel.Sequential, 1, 1),
			}
		},
		Run: func(a []Arg) error {
			n := a[3].Int()
			for i := 0; i < n; i++ {
				score := a[1].Buf.At(i) + a[2].Buf.At(i)
				if score >= 1.0 {
					a[0].Buf.Set(i, 1)
				} else {
					a[0].Buf.Set(i, 0)
				}
			}
			return nil
		},
	}
}

// spmv_csr(y, rowptr, colidx, vals, x, rows): CSR sparse matrix-vector
// product; the column-index gathers on x are the canonical random-access
// UVM stressor.
func spmvCSRDef() *Def {
	return &Def{
		Name: "spmv_csr",
		Sig: mustSig("pointer float, const pointer int, const pointer int, " +
			"const pointer float, const pointer float, sint32"),
		CostOf: func(m []ArgMeta) Cost {
			return Cost{Elements: m[3].Len, OpsPerElement: 2}
		},
		AccessOf: func(m []ArgMeta) []memmodel.Access {
			return []memmodel.Access{
				acc(0, memmodel.Write, memmodel.Sequential, 1, 1),
				acc(1, memmodel.Read, memmodel.Sequential, 1, 1),
				acc(2, memmodel.Read, memmodel.Sequential, 1, 1),
				acc(3, memmodel.Read, memmodel.Sequential, 1, 1),
				acc(4, memmodel.Read, memmodel.Random, 1, 1),
			}
		},
		Run: func(a []Arg) error {
			rows := a[5].Int()
			y, rowptr, colidx, vals, x := a[0].Buf, a[1].Buf, a[2].Buf, a[3].Buf, a[4].Buf
			if rows+1 > rowptr.Len() {
				return fmt.Errorf("spmv_csr: rowptr too short: %d < %d", rowptr.Len(), rows+1)
			}
			for r := 0; r < rows; r++ {
				var sum float64
				for k := int(rowptr.At(r)); k < int(rowptr.At(r+1)); k++ {
					sum += vals.At(k) * x.At(int(colidx.At(k)))
				}
				y.Set(r, sum)
			}
			return nil
		},
	}
}
