package kernels

import (
	"math"
	"sync/atomic"
	"unsafe"

	"grout/internal/memmodel"
)

// AtomicAdd atomically adds v to element i and returns the element's
// previous value, with the same arithmetic as a non-atomic
// At(i)/Set(i, old+v) pair: the addition happens in float64 and the sum is
// converted back to the buffer's kind. Implemented as a compare-and-swap
// loop on the element's machine word, so concurrent callers from the
// parallel kernel executor never lose updates (CUDA atomicAdd semantics).
//
// Integer buffers accumulate exactly under any interleaving as long as the
// operands are integral and the running value stays within ±2^53; float
// buffers are exact per-operation but the final value depends on operand
// order when rounding occurs, exactly like floating-point atomicAdd on
// real hardware.
func (b *Buffer) AtomicAdd(i int, v float64) float64 {
	switch b.Kind {
	case memmodel.Float32:
		addr := (*uint32)(unsafe.Pointer(&b.F32[i]))
		for {
			oldBits := atomic.LoadUint32(addr)
			old := float64(math.Float32frombits(oldBits))
			sum := float32(old + v)
			if sum != sum {
				sum = canonNaN32 // same canonical quiet NaN as Buffer.Set
			}
			if atomic.CompareAndSwapUint32(addr, oldBits, math.Float32bits(sum)) {
				return old
			}
		}
	case memmodel.Float64:
		addr := (*uint64)(unsafe.Pointer(&b.F64[i]))
		for {
			oldBits := atomic.LoadUint64(addr)
			old := math.Float64frombits(oldBits)
			sum := old + v
			if sum != sum {
				sum = canonNaN64
			}
			if atomic.CompareAndSwapUint64(addr, oldBits, math.Float64bits(sum)) {
				return old
			}
		}
	case memmodel.Int32:
		addr := &b.I32[i]
		for {
			old := atomic.LoadInt32(addr)
			next := int32(float64(old) + v)
			if atomic.CompareAndSwapInt32(addr, old, next) {
				return float64(old)
			}
		}
	default:
		addr := &b.I64[i]
		for {
			old := atomic.LoadInt64(addr)
			next := int64(float64(old) + v)
			if atomic.CompareAndSwapInt64(addr, old, next) {
				return float64(old)
			}
		}
	}
}
