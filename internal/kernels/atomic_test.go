package kernels

import (
	"math"
	"sync"
	"testing"

	"grout/internal/memmodel"
)

// TestAtomicAddConcurrent hammers one element per kind from many
// goroutines (run with -race in CI). Integer kinds must be exact; float
// kinds accumulate an integral value so the sum is exact there too as long
// as every CAS retains every contribution.
func TestAtomicAddConcurrent(t *testing.T) {
	const goroutines, perG = 16, 2000
	for _, kind := range []memmodel.ElemKind{
		memmodel.Int32, memmodel.Int64, memmodel.Float32, memmodel.Float64,
	} {
		b := NewBuffer(kind, 3)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					b.AtomicAdd(1, 1)
				}
			}()
		}
		wg.Wait()
		if got := b.At(1); got != goroutines*perG {
			t.Errorf("kind %v: lost updates: got %v, want %d", kind, got, goroutines*perG)
		}
		if b.At(0) != 0 || b.At(2) != 0 {
			t.Errorf("kind %v: neighbouring elements clobbered: %v %v", kind, b.At(0), b.At(2))
		}
	}
}

// TestAtomicAddSemantics checks the scalar arithmetic matches a plain
// At/Set pair for each kind, including int truncation and float32
// rounding, and that the returned value is the pre-add ("old") value as in
// CUDA's atomicAdd.
func TestAtomicAddSemantics(t *testing.T) {
	cases := []struct {
		kind       memmodel.ElemKind
		start, add float64
	}{
		{memmodel.Int32, 5, 2.9},     // truncates toward zero: 5 + 2.9 -> 7
		{memmodel.Int64, -3, -4.5},   // negative truncation: -7.5 -> -7
		{memmodel.Float32, 0.1, 0.2}, // float32 rounding must match Set
		{memmodel.Float64, 1e-9, 1e9},
	}
	for _, c := range cases {
		atomic := NewBuffer(c.kind, 1)
		plain := NewBuffer(c.kind, 1)
		atomic.Set(0, c.start)
		plain.Set(0, c.start)

		old := atomic.AtomicAdd(0, c.add)
		if want := plain.At(0); old != want {
			t.Errorf("kind %v: old value %v, want %v", c.kind, old, want)
		}
		plain.Set(0, plain.At(0)+c.add)
		if a, p := atomic.At(0), plain.At(0); math.Float64bits(a) != math.Float64bits(p) {
			t.Errorf("kind %v: atomic %v != plain %v", c.kind, a, p)
		}
	}
}
