package kernels

import (
	"fmt"
	"strings"

	"grout/internal/memmodel"
)

// Param describes one parameter in a kernel signature.
type Param struct {
	// Name is optional (signatures parsed from strings are positional).
	Name string
	// Kind is the element kind for pointers, or the scalar kind.
	Kind memmodel.ElemKind
	// Pointer marks a device-array parameter.
	Pointer bool
	// Const marks a read-only pointer ("const pointer" in GrCUDA NFI
	// signatures); the scheduler uses it to derive access modes.
	Const bool
}

// Signature is a kernel's parameter list.
type Signature struct {
	Params []Param
}

// ParseSignature parses a GrCUDA-style NFI signature string such as
//
//	"const pointer float, pointer float, sint32"
//
// Each comma-separated entry is a parameter: an optional "const" modifier,
// then either "pointer <kind>" (device array) or a scalar type
// (sint32/sint64/float/double). A bare "pointer" defaults to float.
func ParseSignature(s string) (Signature, error) {
	var sig Signature
	s = strings.TrimSpace(s)
	if s == "" {
		return sig, nil
	}
	for i, field := range strings.Split(s, ",") {
		toks := strings.Fields(field)
		if len(toks) == 0 {
			return Signature{}, fmt.Errorf("kernels: empty parameter %d in signature %q", i, s)
		}
		var p Param
		if toks[0] == "const" {
			p.Const = true
			toks = toks[1:]
			if len(toks) == 0 {
				return Signature{}, fmt.Errorf("kernels: dangling const in parameter %d of %q", i, s)
			}
		}
		switch toks[0] {
		case "pointer":
			p.Pointer = true
			p.Kind = memmodel.Float32
			if len(toks) > 1 {
				k, ok := memmodel.KindFromName(toks[1])
				if !ok {
					return Signature{}, fmt.Errorf("kernels: unknown pointer kind %q in %q", toks[1], s)
				}
				p.Kind = k
			}
		case "sint32", "uint32":
			p.Kind = memmodel.Int32
		case "sint64", "uint64":
			p.Kind = memmodel.Int64
		case "float":
			p.Kind = memmodel.Float32
		case "double":
			p.Kind = memmodel.Float64
		default:
			return Signature{}, fmt.Errorf("kernels: unknown parameter type %q in %q", toks[0], s)
		}
		if p.Const && !p.Pointer {
			return Signature{}, fmt.Errorf("kernels: const scalar parameter %d in %q", i, s)
		}
		sig.Params = append(sig.Params, p)
	}
	return sig, nil
}

// String renders the signature back in NFI style.
func (s Signature) String() string {
	parts := make([]string, len(s.Params))
	for i, p := range s.Params {
		var b strings.Builder
		if p.Const {
			b.WriteString("const ")
		}
		if p.Pointer {
			b.WriteString("pointer ")
			b.WriteString(p.Kind.String())
		} else {
			switch p.Kind {
			case memmodel.Int32:
				b.WriteString("sint32")
			case memmodel.Int64:
				b.WriteString("sint64")
			case memmodel.Float64:
				b.WriteString("double")
			default:
				b.WriteString("float")
			}
		}
		parts[i] = b.String()
	}
	return strings.Join(parts, ", ")
}

// Validate checks an argument list against the signature.
func (s Signature) Validate(args []Arg) error {
	if len(args) != len(s.Params) {
		return fmt.Errorf("kernels: got %d arguments, signature has %d", len(args), len(s.Params))
	}
	for i, p := range s.Params {
		if p.Pointer && args[i].Buf == nil {
			return fmt.Errorf("kernels: argument %d must be a device array", i)
		}
		if !p.Pointer && args[i].Buf != nil {
			return fmt.Errorf("kernels: argument %d must be a scalar", i)
		}
		if p.Pointer && args[i].Buf != nil && args[i].Buf.Kind != p.Kind {
			return fmt.Errorf("kernels: argument %d kind %v, signature wants %v",
				i, args[i].Buf.Kind, p.Kind)
		}
	}
	return nil
}
