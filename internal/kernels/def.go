package kernels

import (
	"fmt"
	"sort"
	"sync"

	"grout/internal/memmodel"
)

// ArgMeta is the scheduler-visible shape of an argument: enough to price a
// launch and derive access patterns without holding real data. Cost-only
// simulations (the benchmark harness) pass metas with no buffers attached.
type ArgMeta struct {
	IsBuffer bool
	// Len is the element count for buffer arguments.
	Len int64
	// Scalar is the value for scalar arguments.
	Scalar float64
}

// MetaOf derives argument metadata from actual arguments.
func MetaOf(args []Arg) []ArgMeta {
	metas := make([]ArgMeta, len(args))
	for i, a := range args {
		if a.Buf != nil {
			metas[i] = ArgMeta{IsBuffer: true, Len: int64(a.Buf.Len())}
		} else {
			metas[i] = ArgMeta{Scalar: a.Scalar}
		}
	}
	return metas
}

// Cost is the abstract execution cost of one launch: the number of logical
// elements processed and the per-element operation count. The GPU
// simulator converts it to time using device throughput.
type Cost struct {
	Elements      int64
	OpsPerElement float64
}

// Def is a kernel definition.
type Def struct {
	// Name is the kernel's registry key (and CUDA symbol name).
	Name string
	// Sig is the parameter signature.
	Sig Signature
	// CostOf prices a launch from argument metadata. If nil, cost
	// defaults to the largest buffer length at 1 op/element.
	CostOf func(meta []ArgMeta) Cost
	// AccessOf describes how each parameter is accessed (indexed like
	// Sig.Params; non-pointer entries are ignored). If nil, pointers
	// default to a full sequential sweep, read-only when Const.
	AccessOf func(meta []ArgMeta) []memmodel.Access
	// Run executes the kernel numerically on host buffers. May be nil
	// for cost-model-only kernels.
	Run func(args []Arg) error
	// RunLaunch executes with an explicit launch configuration.
	// Runtime-compiled kernels (minicuda) set this; native kernels use
	// Run and ignore the configuration.
	RunLaunch func(grid, block int, args []Arg) error
	// CostOfLaunch prices a launch with its configuration; when nil,
	// CostOf (or the default) is used.
	CostOfLaunch func(grid, block int, meta []ArgMeta) Cost
	// Fusion, when non-nil, carries the compiler's fusion descriptor for
	// this kernel: proof that the body has the canonical elementwise
	// shape the optimizer's kernel-fusion pass can combine. The concrete
	// type belongs to the compiler (minicuda.Elementwise); this package
	// only transports it, so native kernels and other front ends can
	// leave it nil.
	Fusion any
}

// Cost prices a launch, applying the default when CostOf is nil.
func (d *Def) Cost(meta []ArgMeta) Cost {
	if d.CostOf != nil {
		return d.CostOf(meta)
	}
	var max int64
	for _, m := range meta {
		if m.IsBuffer && m.Len > max {
			max = m.Len
		}
	}
	return Cost{Elements: max, OpsPerElement: 1}
}

// Access derives per-parameter access descriptors, applying the default
// when AccessOf is nil. The result is always indexed like Sig.Params
// (AccessOf implementations may return a prefix; it is padded).
func (d *Def) Access(meta []ArgMeta) []memmodel.Access {
	if d.AccessOf != nil {
		accs := d.AccessOf(meta)
		for len(accs) < len(d.Sig.Params) {
			accs = append(accs, memmodel.Access{Param: len(accs)})
		}
		return accs
	}
	out := make([]memmodel.Access, len(d.Sig.Params))
	for i, p := range d.Sig.Params {
		if !p.Pointer {
			continue
		}
		mode := memmodel.ReadWrite
		if p.Const {
			mode = memmodel.Read
		}
		out[i] = memmodel.Access{
			Param: i, Mode: mode, Pattern: memmodel.Sequential, Fraction: 1, Passes: 1,
		}
	}
	return out
}

// CostLaunch prices a launch given its configuration, falling back to the
// configuration-independent cost.
func (d *Def) CostLaunch(grid, block int, meta []ArgMeta) Cost {
	if d.CostOfLaunch != nil {
		return d.CostOfLaunch(grid, block, meta)
	}
	return d.Cost(meta)
}

// Execute validates arguments and runs the kernel numerically.
func (d *Def) Execute(args []Arg) error {
	return d.ExecuteLaunch(1, 1, args)
}

// ExecuteLaunch validates arguments and runs the kernel numerically under
// an explicit launch configuration.
func (d *Def) ExecuteLaunch(grid, block int, args []Arg) error {
	if err := d.Sig.Validate(args); err != nil {
		return fmt.Errorf("%s: %w", d.Name, err)
	}
	if d.RunLaunch != nil {
		return d.RunLaunch(grid, block, args)
	}
	if d.Run == nil {
		return fmt.Errorf("kernels: %s has no numeric implementation", d.Name)
	}
	return d.Run(args)
}

// Registry maps kernel names to definitions. It is safe for concurrent
// use.
type Registry struct {
	mu   sync.RWMutex
	defs map[string]*Def
	// srcCache maps buildkernel cache keys (minicuda.CacheKey over source
	// and signature) to registered kernel names, so a repeated buildkernel
	// of the same source resolves without re-entering the compiler.
	srcCache map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{defs: make(map[string]*Def), srcCache: make(map[string]string)}
}

// CachedSource resolves a buildkernel cache key to the kernel name it
// previously registered.
func (r *Registry) CachedSource(key string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	name, ok := r.srcCache[key]
	return name, ok
}

// CacheSource records that a buildkernel cache key produced the named
// kernel.
func (r *Registry) CacheSource(key, name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.srcCache == nil {
		r.srcCache = make(map[string]string)
	}
	r.srcCache[key] = name
}

// Register adds a definition; re-registering a name is an error (kernels
// are immutable once built).
func (r *Registry) Register(d *Def) error {
	if d.Name == "" {
		return fmt.Errorf("kernels: definition with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.defs[d.Name]; dup {
		return fmt.Errorf("kernels: %q already registered", d.Name)
	}
	r.defs[d.Name] = d
	return nil
}

// Lookup finds a definition by name.
func (r *Registry) Lookup(name string) (*Def, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.defs[name]
	return d, ok
}

// Names returns all registered kernel names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.defs))
	for n := range r.defs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// StdRegistry returns a fresh registry pre-loaded with the native kernel
// library (the "pre-compiled kernels" path of the paper's buildkernel).
func StdRegistry() *Registry {
	r := NewRegistry()
	for _, d := range stdlib() {
		if err := r.Register(d); err != nil {
			panic(err) // stdlib duplicates are a programming error
		}
	}
	return r
}
