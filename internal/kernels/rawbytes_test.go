package kernels

import (
	"strings"
	"testing"

	"grout/internal/memmodel"
)

var allKinds = []memmodel.ElemKind{
	memmodel.Float32, memmodel.Float64, memmodel.Int32, memmodel.Int64,
}

func TestRawBytesRoundTrip(t *testing.T) {
	for _, kind := range allKinds {
		b := NewBuffer(kind, 16)
		for i := 0; i < 16; i++ {
			b.Set(i, float64(i*3-8))
		}
		raw := b.RawBytes()
		if want := int(b.Bytes()); len(raw) != want {
			t.Fatalf("%v: RawBytes len = %d, want %d", kind, len(raw), want)
		}
		c := NewBuffer(kind, 16)
		if err := c.SetRawBytes(0, raw); err != nil {
			t.Fatalf("%v: SetRawBytes: %v", kind, err)
		}
		for i := 0; i < 16; i++ {
			if c.At(i) != b.At(i) {
				t.Fatalf("%v: elem %d = %v, want %v", kind, i, c.At(i), b.At(i))
			}
		}
	}
}

func TestRawSpanAliasesStorage(t *testing.T) {
	b := NewBuffer(memmodel.Float64, 8)
	es := int(memmodel.Float64.Size())
	span, err := b.RawSpan(2*es, 3*es)
	if err != nil {
		t.Fatal(err)
	}
	if len(span) != 3*es {
		t.Fatalf("span len = %d", len(span))
	}
	// Writing through the span must be visible through At on LE hosts; on
	// BE hosts RawSpan is a copy, so only check via SetRawBytes.
	src := NewBuffer(memmodel.Float64, 3)
	src.Set(0, 1.5)
	src.Set(1, -2.5)
	src.Set(2, 42)
	if err := b.SetRawBytes(2*es, src.RawBytes()); err != nil {
		t.Fatal(err)
	}
	if b.At(2) != 1.5 || b.At(3) != -2.5 || b.At(4) != 42 {
		t.Fatalf("SetRawBytes at offset: got %v %v %v", b.At(2), b.At(3), b.At(4))
	}
	if b.At(1) != 0 || b.At(5) != 0 {
		t.Fatalf("SetRawBytes touched neighbors")
	}
}

func TestRawSpanBounds(t *testing.T) {
	b := NewBuffer(memmodel.Float32, 8) // 32 bytes
	for _, tc := range []struct{ off, n int }{
		{-4, 8},  // negative offset
		{0, -4},  // negative length
		{0, 36},  // past the end
		{32, 4},  // starts past the end
		{1, 4},   // misaligned offset
		{0, 6},   // misaligned length
		{30, 30}, // overflow-ish combination
	} {
		if _, err := b.RawSpan(tc.off, tc.n); err == nil {
			t.Fatalf("RawSpan(%d, %d) accepted", tc.off, tc.n)
		}
		if tc.n >= 0 {
			if err := b.SetRawBytes(tc.off, make([]byte, tc.n)); err == nil {
				t.Fatalf("SetRawBytes(%d, %d bytes) accepted", tc.off, tc.n)
			}
		}
	}
	// The full span is fine.
	if _, err := b.RawSpan(0, 32); err != nil {
		t.Fatalf("full span rejected: %v", err)
	}
}

func TestFillAllKinds(t *testing.T) {
	for _, kind := range allKinds {
		b := NewBuffer(kind, 64)
		b.Fill(7)
		for i := 0; i < 64; i++ {
			if b.At(i) != 7 {
				t.Fatalf("%v: fill elem %d = %v", kind, i, b.At(i))
			}
		}
		// Integer kinds truncate fractional fills the same way Set does.
		b.Fill(2.9)
		want := b.At(0)
		for i := 1; i < 64; i++ {
			if b.At(i) != want {
				t.Fatalf("%v: inconsistent fill: %v vs %v", kind, b.At(i), want)
			}
		}
	}
}

func TestMaxAbsDiffMismatchedLengthsPanics(t *testing.T) {
	a := NewBuffer(memmodel.Float32, 8)
	b := NewBuffer(memmodel.Float32, 4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("MaxAbsDiff over mismatched lengths did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "mismatched lengths") {
			t.Fatalf("panic = %v, want mismatched-lengths message", r)
		}
	}()
	_ = a.MaxAbsDiff(b)
}

func TestMaxAbsDiffMixedKinds(t *testing.T) {
	a := NewBuffer(memmodel.Float32, 8)
	b := NewBuffer(memmodel.Float64, 8)
	for i := 0; i < 8; i++ {
		a.Set(i, float64(i))
		b.Set(i, float64(i))
	}
	if d := a.MaxAbsDiff(b); d != 0 {
		t.Fatalf("mixed-kind equal buffers diff = %v", d)
	}
	b.Set(3, 5)
	if d := a.MaxAbsDiff(b); d != 2 {
		t.Fatalf("mixed-kind diff = %v, want 2", d)
	}
}
