// Package kernels defines the kernel abstraction shared by the GrOUT
// runtime, the mini-CUDA compiler and the workload suite: typed host-side
// buffers, NFI-style signatures, and kernel definitions that carry both a
// numeric implementation (so examples compute real results) and a cost
// descriptor (so the simulator can price a launch without executing it).
package kernels

import (
	"fmt"
	"math"

	"grout/internal/memmodel"
)

// Buffer is the host-visible storage of a framework-managed array. Exactly
// one of the typed slices is non-nil, matching Kind.
type Buffer struct {
	Kind memmodel.ElemKind
	F32  []float32
	F64  []float64
	I32  []int32
	I64  []int64
}

// NewBuffer allocates a zeroed buffer of n elements of the given kind.
func NewBuffer(kind memmodel.ElemKind, n int) *Buffer {
	b := &Buffer{Kind: kind}
	switch kind {
	case memmodel.Float32:
		b.F32 = make([]float32, n)
	case memmodel.Float64:
		b.F64 = make([]float64, n)
	case memmodel.Int32:
		b.I32 = make([]int32, n)
	case memmodel.Int64:
		b.I64 = make([]int64, n)
	default:
		panic(fmt.Sprintf("kernels: unknown element kind %v", kind))
	}
	return b
}

// Len reports the element count.
func (b *Buffer) Len() int {
	switch b.Kind {
	case memmodel.Float32:
		return len(b.F32)
	case memmodel.Float64:
		return len(b.F64)
	case memmodel.Int32:
		return len(b.I32)
	default:
		return len(b.I64)
	}
}

// Bytes reports the buffer's size in bytes.
func (b *Buffer) Bytes() memmodel.Bytes {
	return memmodel.Bytes(b.Len()) * b.Kind.Size()
}

// At reads element i as float64 (lossless for all kinds except very large
// int64 values; fine for numeric kernels and tests).
func (b *Buffer) At(i int) float64 {
	switch b.Kind {
	case memmodel.Float32:
		return float64(b.F32[i])
	case memmodel.Float64:
		return b.F64[i]
	case memmodel.Int32:
		return float64(b.I32[i])
	default:
		return float64(b.I64[i])
	}
}

// CUDA never lets NaN payloads escape an arithmetic unit: a
// single-precision op with a NaN input returns the quiet NaN 0x7fffffff,
// and double precision its 64-bit analogue. Go gives no such guarantee —
// the register allocator may commute ADDSD operands, so which operand's
// sign/payload propagates through `NaN + NaN` is codegen-dependent, and
// the same source expression can yield different NaN bits in different
// closures. Canonicalizing at the store boundary restores CUDA's
// determinism: it is what lets the fusion fuzzer and the optimizer
// differential gate compare buffers bit-for-bit. RawBytes paths stay
// untouched — transfers are memcpys and must preserve bytes exactly.
var (
	canonNaN32 = math.Float32frombits(0x7fffffff)
	canonNaN64 = math.Float64frombits(0x7fffffffffffffff)
)

// Set stores v into element i, converting to the buffer's kind.
func (b *Buffer) Set(i int, v float64) {
	if v != v {
		switch b.Kind {
		case memmodel.Float32:
			b.F32[i] = canonNaN32
			return
		case memmodel.Float64:
			b.F64[i] = canonNaN64
			return
		}
	}
	switch b.Kind {
	case memmodel.Float32:
		b.F32[i] = float32(v)
	case memmodel.Float64:
		b.F64[i] = v
	case memmodel.Int32:
		b.I32[i] = int32(v)
	default:
		b.I64[i] = int64(v)
	}
}

// Fill sets every element to v. The kind switch is hoisted out of the
// loop: each arm is a tight fill over the typed slice rather than a
// per-element Set dispatch.
func (b *Buffer) Fill(v float64) {
	if v != v {
		v = canonNaN64
		if b.Kind == memmodel.Float32 {
			for i := range b.F32 {
				b.F32[i] = canonNaN32
			}
			return
		}
	}
	switch b.Kind {
	case memmodel.Float32:
		f := float32(v)
		for i := range b.F32 {
			b.F32[i] = f
		}
	case memmodel.Float64:
		for i := range b.F64 {
			b.F64[i] = v
		}
	case memmodel.Int32:
		n := int32(v)
		for i := range b.I32 {
			b.I32[i] = n
		}
	default:
		n := int64(v)
		for i := range b.I64 {
			b.I64[i] = n
		}
	}
}

// Clone returns a deep copy of the buffer.
func (b *Buffer) Clone() *Buffer {
	c := &Buffer{Kind: b.Kind}
	switch b.Kind {
	case memmodel.Float32:
		c.F32 = append([]float32(nil), b.F32...)
	case memmodel.Float64:
		c.F64 = append([]float64(nil), b.F64...)
	case memmodel.Int32:
		c.I32 = append([]int32(nil), b.I32...)
	default:
		c.I64 = append([]int64(nil), b.I64...)
	}
	return c
}

// MaxAbsDiff reports the largest absolute element difference between two
// buffers of equal length; used by equivalence tests. Comparing buffers of
// different lengths is a caller bug — it panics instead of silently
// comparing the shorter prefix. When both buffers share a kind the
// element loop runs over the typed slices directly.
func (b *Buffer) MaxAbsDiff(o *Buffer) float64 {
	n := b.Len()
	if o.Len() != n {
		panic(fmt.Sprintf("kernels: MaxAbsDiff over mismatched lengths %d vs %d", n, o.Len()))
	}
	var max float64
	if b.Kind == o.Kind {
		switch b.Kind {
		case memmodel.Float32:
			for i, v := range b.F32 {
				if d := math.Abs(float64(v) - float64(o.F32[i])); d > max {
					max = d
				}
			}
			return max
		case memmodel.Float64:
			for i, v := range b.F64 {
				if d := math.Abs(v - o.F64[i]); d > max {
					max = d
				}
			}
			return max
		case memmodel.Int32:
			for i, v := range b.I32 {
				if d := math.Abs(float64(v) - float64(o.I32[i])); d > max {
					max = d
				}
			}
			return max
		default:
			for i, v := range b.I64 {
				if d := math.Abs(float64(v) - float64(o.I64[i])); d > max {
					max = d
				}
			}
			return max
		}
	}
	for i := 0; i < n; i++ {
		if d := math.Abs(b.At(i) - o.At(i)); d > max {
			max = d
		}
	}
	return max
}

// Arg is one actual argument of a kernel invocation: a buffer for pointer
// parameters or a scalar for value parameters.
type Arg struct {
	Buf    *Buffer
	Scalar float64
}

// BufArg wraps a buffer argument.
func BufArg(b *Buffer) Arg { return Arg{Buf: b} }

// ScalarArg wraps a scalar argument.
func ScalarArg(v float64) Arg { return Arg{Scalar: v} }

// Int reads the scalar as an int (grid sizes, element counts).
func (a Arg) Int() int { return int(a.Scalar) }
