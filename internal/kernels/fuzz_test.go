package kernels

import "testing"

// FuzzParseSignature: arbitrary signature strings must never panic, and
// accepted signatures must round-trip through String.
func FuzzParseSignature(f *testing.F) {
	f.Add("pointer float, const pointer double, sint32")
	f.Add("sint64, float, double")
	f.Add("const pointer")
	f.Add("")
	f.Add(",,,")
	f.Fuzz(func(t *testing.T, s string) {
		sig, err := ParseSignature(s)
		if err != nil {
			return
		}
		again, err := ParseSignature(sig.String())
		if err != nil {
			t.Fatalf("round-trip of %q -> %q failed: %v", s, sig.String(), err)
		}
		if len(again.Params) != len(sig.Params) {
			t.Fatalf("round-trip changed arity: %q", s)
		}
	})
}
