package kernels

import (
	"math"
	"testing"
	"testing/quick"

	"grout/internal/memmodel"
)

func TestBufferKinds(t *testing.T) {
	for _, kind := range []memmodel.ElemKind{memmodel.Float32, memmodel.Float64, memmodel.Int32, memmodel.Int64} {
		b := NewBuffer(kind, 10)
		if b.Len() != 10 {
			t.Fatalf("%v len = %d", kind, b.Len())
		}
		if b.Bytes() != memmodel.Bytes(10)*kind.Size() {
			t.Fatalf("%v bytes = %v", kind, b.Bytes())
		}
		b.Set(3, 7)
		if b.At(3) != 7 {
			t.Fatalf("%v roundtrip = %v", kind, b.At(3))
		}
	}
}

func TestBufferFillCloneDiff(t *testing.T) {
	b := NewBuffer(memmodel.Float64, 5)
	b.Fill(2.5)
	c := b.Clone()
	if c.MaxAbsDiff(b) != 0 {
		t.Fatalf("clone differs")
	}
	c.Set(2, 4.0)
	if d := c.MaxAbsDiff(b); d != 1.5 {
		t.Fatalf("diff = %v, want 1.5", d)
	}
	if b.At(2) != 2.5 {
		t.Fatalf("clone aliases original")
	}
}

func TestParseSignature(t *testing.T) {
	sig, err := ParseSignature("const pointer float, pointer double, sint32, float")
	if err != nil {
		t.Fatal(err)
	}
	if len(sig.Params) != 4 {
		t.Fatalf("param count = %d", len(sig.Params))
	}
	p := sig.Params
	if !p[0].Pointer || !p[0].Const || p[0].Kind != memmodel.Float32 {
		t.Fatalf("param0 = %+v", p[0])
	}
	if !p[1].Pointer || p[1].Const || p[1].Kind != memmodel.Float64 {
		t.Fatalf("param1 = %+v", p[1])
	}
	if p[2].Pointer || p[2].Kind != memmodel.Int32 {
		t.Fatalf("param2 = %+v", p[2])
	}
	if p[3].Pointer || p[3].Kind != memmodel.Float32 {
		t.Fatalf("param3 = %+v", p[3])
	}
	// Round-trip through String.
	again, err := ParseSignature(sig.String())
	if err != nil || len(again.Params) != 4 {
		t.Fatalf("signature string round-trip failed: %q, %v", sig.String(), err)
	}
}

func TestParseSignatureErrors(t *testing.T) {
	for _, bad := range []string{
		"quaternion",
		"pointer quaternion",
		"const sint32",
		"const",
		"pointer float,,sint32",
	} {
		if _, err := ParseSignature(bad); err == nil {
			t.Errorf("ParseSignature(%q) succeeded", bad)
		}
	}
	if sig, err := ParseSignature(""); err != nil || len(sig.Params) != 0 {
		t.Fatalf("empty signature: %v %v", sig, err)
	}
	// Bare pointer defaults to float.
	sig, err := ParseSignature("pointer")
	if err != nil || !sig.Params[0].Pointer || sig.Params[0].Kind != memmodel.Float32 {
		t.Fatalf("bare pointer = %+v, %v", sig, err)
	}
}

func TestSignatureValidate(t *testing.T) {
	sig := mustSig("pointer float, sint32")
	buf := NewBuffer(memmodel.Float32, 4)
	if err := sig.Validate([]Arg{BufArg(buf), ScalarArg(4)}); err != nil {
		t.Fatal(err)
	}
	if err := sig.Validate([]Arg{ScalarArg(1), ScalarArg(4)}); err == nil {
		t.Fatalf("scalar for pointer accepted")
	}
	if err := sig.Validate([]Arg{BufArg(buf), BufArg(buf)}); err == nil {
		t.Fatalf("buffer for scalar accepted")
	}
	if err := sig.Validate([]Arg{BufArg(buf)}); err == nil {
		t.Fatalf("arity mismatch accepted")
	}
	wrongKind := NewBuffer(memmodel.Float64, 4)
	if err := sig.Validate([]Arg{BufArg(wrongKind), ScalarArg(4)}); err == nil {
		t.Fatalf("kind mismatch accepted")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	d := &Def{Name: "k"}
	if err := r.Register(d); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(d); err == nil {
		t.Fatalf("duplicate registration accepted")
	}
	if err := r.Register(&Def{}); err == nil {
		t.Fatalf("empty name accepted")
	}
	got, ok := r.Lookup("k")
	if !ok || got != d {
		t.Fatalf("lookup failed")
	}
	if _, ok := r.Lookup("missing"); ok {
		t.Fatalf("missing lookup succeeded")
	}
}

func TestStdRegistryComplete(t *testing.T) {
	r := StdRegistry()
	want := []string{"add_s", "axpy", "axpy_s", "bias_relu", "blackscholes",
		"cg_matgen", "combine_argmax", "copy", "div_s", "dot", "fill",
		"gather2", "gemv", "l2norm", "relu", "rowdot", "scale", "softmax",
		"spmv_csr", "stencil3", "xpay_s"}
	names := r.Names()
	if len(names) != len(want) {
		t.Fatalf("stdlib names = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("stdlib[%d] = %q, want %q", i, names[i], n)
		}
	}
}

func TestDefaultCostAndAccess(t *testing.T) {
	d := &Def{Name: "d", Sig: mustSig("const pointer float, pointer float")}
	buf := NewBuffer(memmodel.Float32, 100)
	meta := MetaOf([]Arg{BufArg(buf), BufArg(buf)})
	cost := d.Cost(meta)
	if cost.Elements != 100 || cost.OpsPerElement != 1 {
		t.Fatalf("default cost = %+v", cost)
	}
	accs := d.Access(meta)
	if accs[0].Mode != memmodel.Read || accs[1].Mode != memmodel.ReadWrite {
		t.Fatalf("default access modes = %v %v", accs[0].Mode, accs[1].Mode)
	}
}

func TestAxpy(t *testing.T) {
	r := StdRegistry()
	axpy, _ := r.Lookup("axpy")
	y := NewBuffer(memmodel.Float32, 4)
	x := NewBuffer(memmodel.Float32, 4)
	for i := 0; i < 4; i++ {
		y.Set(i, 1)
		x.Set(i, float64(i))
	}
	if err := axpy.Execute([]Arg{BufArg(y), BufArg(x), ScalarArg(2), ScalarArg(4)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if want := 1 + 2*float64(i); y.At(i) != want {
			t.Fatalf("y[%d] = %v, want %v", i, y.At(i), want)
		}
	}
}

func TestDotAndL2Norm(t *testing.T) {
	r := StdRegistry()
	dot, _ := r.Lookup("dot")
	out := NewBuffer(memmodel.Float32, 1)
	x := NewBuffer(memmodel.Float32, 3)
	y := NewBuffer(memmodel.Float32, 3)
	for i := 0; i < 3; i++ {
		x.Set(i, float64(i+1)) // 1,2,3
		y.Set(i, 2)
	}
	if err := dot.Execute([]Arg{BufArg(out), BufArg(x), BufArg(y), ScalarArg(3)}); err != nil {
		t.Fatal(err)
	}
	if out.At(0) != 12 {
		t.Fatalf("dot = %v, want 12", out.At(0))
	}
	l2, _ := r.Lookup("l2norm")
	if err := l2.Execute([]Arg{BufArg(out), BufArg(x), ScalarArg(3)}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.At(0)-math.Sqrt(14)) > 1e-6 {
		t.Fatalf("l2norm = %v", out.At(0))
	}
}

func TestGemv(t *testing.T) {
	r := StdRegistry()
	gemv, _ := r.Lookup("gemv")
	// 2x3 matrix [[1,2,3],[4,5,6]] * [1,1,1] = [6,15]
	A := NewBuffer(memmodel.Float32, 6)
	for i := 0; i < 6; i++ {
		A.Set(i, float64(i+1))
	}
	x := NewBuffer(memmodel.Float32, 3)
	x.Fill(1)
	y := NewBuffer(memmodel.Float32, 2)
	if err := gemv.Execute([]Arg{BufArg(y), BufArg(A), BufArg(x), ScalarArg(2), ScalarArg(3)}); err != nil {
		t.Fatal(err)
	}
	if y.At(0) != 6 || y.At(1) != 15 {
		t.Fatalf("gemv = [%v %v], want [6 15]", y.At(0), y.At(1))
	}
	// Bounds check.
	if err := gemv.Execute([]Arg{BufArg(y), BufArg(A), BufArg(x), ScalarArg(100), ScalarArg(3)}); err == nil {
		t.Fatalf("oversized gemv accepted")
	}
}

func TestBlackScholesSanity(t *testing.T) {
	r := StdRegistry()
	bs, _ := r.Lookup("blackscholes")
	spot := NewBuffer(memmodel.Float32, 3)
	spot.Set(0, 100) // at the money
	spot.Set(1, 200) // deep in the money call
	spot.Set(2, 0)   // degenerate
	call := NewBuffer(memmodel.Float32, 3)
	put := NewBuffer(memmodel.Float32, 3)
	if err := bs.Execute([]Arg{BufArg(call), BufArg(put), BufArg(spot), ScalarArg(3)}); err != nil {
		t.Fatal(err)
	}
	// At the money, K=100, r=5%, vol=20%, T=1: call ~ 10.45, put ~ 5.57.
	if math.Abs(call.At(0)-10.45) > 0.1 {
		t.Fatalf("ATM call = %v, want ~10.45", call.At(0))
	}
	if math.Abs(put.At(0)-5.57) > 0.1 {
		t.Fatalf("ATM put = %v, want ~5.57", put.At(0))
	}
	// Put-call parity: C - P = S - K e^{-rT}.
	parity := call.At(1) - put.At(1) - (200 - 100*math.Exp(-0.05))
	if math.Abs(parity) > 1e-3 {
		t.Fatalf("put-call parity violated by %v", parity)
	}
	if call.At(2) != 0 {
		t.Fatalf("zero spot call = %v", call.At(2))
	}
}

// Property: put-call parity holds across random positive spots.
func TestBlackScholesParityProperty(t *testing.T) {
	r := StdRegistry()
	bs, _ := r.Lookup("blackscholes")
	f := func(raw uint16) bool {
		s := 1 + float64(raw)/100 // spot in [1, 656]
		spot := NewBuffer(memmodel.Float64, 1)
		spot.Set(0, s)
		call := NewBuffer(memmodel.Float64, 1)
		put := NewBuffer(memmodel.Float64, 1)
		// Build float64 variants by hand: signature wants float32, so
		// use the float32 path (parity tolerance is loose enough).
		spot32 := NewBuffer(memmodel.Float32, 1)
		spot32.Set(0, s)
		call32 := NewBuffer(memmodel.Float32, 1)
		put32 := NewBuffer(memmodel.Float32, 1)
		if err := bs.Execute([]Arg{BufArg(call32), BufArg(put32), BufArg(spot32), ScalarArg(1)}); err != nil {
			return false
		}
		_ = call
		_ = put
		want := s - 100*math.Exp(-0.05)
		return math.Abs((call32.At(0)-put32.At(0))-want) < 1e-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxRelu(t *testing.T) {
	r := StdRegistry()
	softmax, _ := r.Lookup("softmax")
	x := NewBuffer(memmodel.Float32, 4)
	for i := 0; i < 4; i++ {
		x.Set(i, float64(i))
	}
	if err := softmax.Execute([]Arg{BufArg(x), ScalarArg(4)}); err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := 0; i < 4; i++ {
		sum += x.At(i)
		if i > 0 && x.At(i) <= x.At(i-1) {
			t.Fatalf("softmax not monotone")
		}
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("softmax sum = %v", sum)
	}

	relu, _ := r.Lookup("relu")
	y := NewBuffer(memmodel.Float32, 3)
	y.Set(0, -5)
	y.Set(1, 0)
	y.Set(2, 3)
	if err := relu.Execute([]Arg{BufArg(y), ScalarArg(3)}); err != nil {
		t.Fatal(err)
	}
	if y.At(0) != 0 || y.At(1) != 0 || y.At(2) != 3 {
		t.Fatalf("relu = [%v %v %v]", y.At(0), y.At(1), y.At(2))
	}
}

func TestSpmvCSR(t *testing.T) {
	r := StdRegistry()
	spmv, _ := r.Lookup("spmv_csr")
	// Matrix [[2,0],[1,3]] in CSR.
	rowptr := NewBuffer(memmodel.Int32, 3)
	rowptr.Set(0, 0)
	rowptr.Set(1, 1)
	rowptr.Set(2, 3)
	colidx := NewBuffer(memmodel.Int32, 3)
	colidx.Set(0, 0)
	colidx.Set(1, 0)
	colidx.Set(2, 1)
	vals := NewBuffer(memmodel.Float32, 3)
	vals.Set(0, 2)
	vals.Set(1, 1)
	vals.Set(2, 3)
	x := NewBuffer(memmodel.Float32, 2)
	x.Set(0, 10)
	x.Set(1, 20)
	y := NewBuffer(memmodel.Float32, 2)
	args := []Arg{BufArg(y), BufArg(rowptr), BufArg(colidx), BufArg(vals), BufArg(x), ScalarArg(2)}
	if err := spmv.Execute(args); err != nil {
		t.Fatal(err)
	}
	if y.At(0) != 20 || y.At(1) != 70 {
		t.Fatalf("spmv = [%v %v], want [20 70]", y.At(0), y.At(1))
	}
	// spmv's x access must be Random — the UVM stressor.
	accs := spmv.Access(MetaOf(args))
	if accs[4].Pattern != memmodel.Random {
		t.Fatalf("spmv x pattern = %v, want random", accs[4].Pattern)
	}
}

func TestCombineArgmax(t *testing.T) {
	r := StdRegistry()
	comb, _ := r.Lookup("combine_argmax")
	a := NewBuffer(memmodel.Float32, 2)
	b := NewBuffer(memmodel.Float32, 2)
	out := NewBuffer(memmodel.Float32, 2)
	a.Set(0, 0.9)
	b.Set(0, 0.8) // sum 1.7 -> class 1
	a.Set(1, 0.1)
	b.Set(1, 0.2) // sum 0.3 -> class 0
	if err := comb.Execute([]Arg{BufArg(out), BufArg(a), BufArg(b), ScalarArg(2)}); err != nil {
		t.Fatal(err)
	}
	if out.At(0) != 1 || out.At(1) != 0 {
		t.Fatalf("combine = [%v %v]", out.At(0), out.At(1))
	}
}

func TestFillAndCopy(t *testing.T) {
	r := StdRegistry()
	fill, _ := r.Lookup("fill")
	cp, _ := r.Lookup("copy")
	a := NewBuffer(memmodel.Float32, 4)
	b := NewBuffer(memmodel.Float32, 4)
	if err := fill.Execute([]Arg{BufArg(a), ScalarArg(3.5), ScalarArg(4)}); err != nil {
		t.Fatal(err)
	}
	if err := cp.Execute([]Arg{BufArg(b), BufArg(a), ScalarArg(4)}); err != nil {
		t.Fatal(err)
	}
	if b.MaxAbsDiff(a) != 0 {
		t.Fatalf("copy mismatch")
	}
	// fill bounds check
	if err := fill.Execute([]Arg{BufArg(a), ScalarArg(0), ScalarArg(100)}); err == nil {
		t.Fatalf("oversized fill accepted")
	}
}

func TestExecuteWithoutImpl(t *testing.T) {
	d := &Def{Name: "ghost", Sig: mustSig("sint32")}
	if err := d.Execute([]Arg{ScalarArg(1)}); err == nil {
		t.Fatalf("kernel without impl executed")
	}
}

func TestMetaOf(t *testing.T) {
	buf := NewBuffer(memmodel.Float32, 7)
	metas := MetaOf([]Arg{BufArg(buf), ScalarArg(3.5)})
	if !metas[0].IsBuffer || metas[0].Len != 7 {
		t.Fatalf("meta0 = %+v", metas[0])
	}
	if metas[1].IsBuffer || metas[1].Scalar != 3.5 {
		t.Fatalf("meta1 = %+v", metas[1])
	}
}

func TestStencil3(t *testing.T) {
	r := StdRegistry()
	st, _ := r.Lookup("stencil3")
	in := NewBuffer(memmodel.Float32, 5)
	for i := 0; i < 5; i++ {
		in.Set(i, float64(i*3)) // 0,3,6,9,12
	}
	out := NewBuffer(memmodel.Float32, 5)
	if err := st.Execute([]Arg{BufArg(out), BufArg(in), ScalarArg(5)}); err != nil {
		t.Fatal(err)
	}
	// Interior: (3+6+9)/3 = 6. Borders clamp: (0+0+3)/3 = 1.
	if out.At(2) != 6 || out.At(0) != 1 || out.At(4) != 11 {
		t.Fatalf("stencil = [%v %v ... %v]", out.At(0), out.At(2), out.At(4))
	}
	if err := st.Execute([]Arg{BufArg(out), BufArg(in), ScalarArg(100)}); err == nil {
		t.Fatalf("oversized stencil accepted")
	}
}

func TestBiasRelu(t *testing.T) {
	r := StdRegistry()
	br, _ := r.Lookup("bias_relu")
	x := NewBuffer(memmodel.Float32, 3)
	x.Set(0, -5)
	x.Set(1, -0.05)
	x.Set(2, 2)
	bias := NewBuffer(memmodel.Float32, 1)
	bias.Set(0, 0.1)
	if err := br.Execute([]Arg{BufArg(x), BufArg(bias), ScalarArg(3)}); err != nil {
		t.Fatal(err)
	}
	if x.At(0) != 0 || math.Abs(x.At(1)-0.05) > 1e-6 || math.Abs(x.At(2)-2.1) > 1e-6 {
		t.Fatalf("bias_relu = [%v %v %v]", x.At(0), x.At(1), x.At(2))
	}
}
