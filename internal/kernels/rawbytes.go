package kernels

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"

	"grout/internal/memmodel"
)

// hostLittleEndian reports whether the process runs on a little-endian
// machine. The wire format is little-endian; on LE hosts the typed slices
// can alias raw wire bytes directly (zero copy), on BE hosts the slower
// per-element conversion path keeps the format portable.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// aliasBytes reinterprets the buffer's typed storage as its underlying
// bytes, without copying. Only meaningful on little-endian hosts.
func (b *Buffer) aliasBytes() []byte {
	switch b.Kind {
	case memmodel.Float32:
		if len(b.F32) == 0 {
			return nil
		}
		return unsafe.Slice((*byte)(unsafe.Pointer(&b.F32[0])), len(b.F32)*4)
	case memmodel.Float64:
		if len(b.F64) == 0 {
			return nil
		}
		return unsafe.Slice((*byte)(unsafe.Pointer(&b.F64[0])), len(b.F64)*8)
	case memmodel.Int32:
		if len(b.I32) == 0 {
			return nil
		}
		return unsafe.Slice((*byte)(unsafe.Pointer(&b.I32[0])), len(b.I32)*4)
	default:
		if len(b.I64) == 0 {
			return nil
		}
		return unsafe.Slice((*byte)(unsafe.Pointer(&b.I64[0])), len(b.I64)*8)
	}
}

// RawBytes returns the buffer's contents as little-endian wire bytes. On
// little-endian hosts the returned slice aliases the buffer's storage —
// zero copy, so the transport can stream array payloads straight from (and
// into) the typed slices. On big-endian hosts it returns a converted copy.
//
// Callers must not retain the slice past mutations of the buffer.
func (b *Buffer) RawBytes() []byte {
	if hostLittleEndian {
		return b.aliasBytes()
	}
	out := make([]byte, int(b.Bytes()))
	es := int(b.Kind.Size())
	for i, n := 0, b.Len(); i < n; i++ {
		off := i * es
		switch b.Kind {
		case memmodel.Float32:
			binary.LittleEndian.PutUint32(out[off:], math.Float32bits(b.F32[i]))
		case memmodel.Float64:
			binary.LittleEndian.PutUint64(out[off:], math.Float64bits(b.F64[i]))
		case memmodel.Int32:
			binary.LittleEndian.PutUint32(out[off:], uint32(b.I32[i]))
		default:
			binary.LittleEndian.PutUint64(out[off:], uint64(b.I64[i]))
		}
	}
	return out
}

// RawSpan returns the little-endian wire bytes of the element range that
// starts at byte offset off and spans n bytes; both must be multiples of
// the element size and inside the buffer. On little-endian hosts the span
// aliases storage (zero copy).
func (b *Buffer) RawSpan(off, n int) ([]byte, error) {
	if err := b.checkSpan(off, n); err != nil {
		return nil, err
	}
	if hostLittleEndian {
		return b.aliasBytes()[off : off+n], nil
	}
	return b.RawBytes()[off : off+n], nil
}

// SetRawBytes copies little-endian wire bytes into the buffer storage
// starting at byte offset off. off and len(p) must be multiples of the
// element size and the span must fit the buffer; the transport's chunked
// receives land each chunk here, directly in place.
func (b *Buffer) SetRawBytes(off int, p []byte) error {
	if err := b.checkSpan(off, len(p)); err != nil {
		return err
	}
	if hostLittleEndian {
		copy(b.aliasBytes()[off:], p)
		return nil
	}
	es := int(b.Kind.Size())
	for i := 0; i < len(p); i += es {
		elem := (off + i) / es
		switch b.Kind {
		case memmodel.Float32:
			b.F32[elem] = math.Float32frombits(binary.LittleEndian.Uint32(p[i:]))
		case memmodel.Float64:
			b.F64[elem] = math.Float64frombits(binary.LittleEndian.Uint64(p[i:]))
		case memmodel.Int32:
			b.I32[elem] = int32(binary.LittleEndian.Uint32(p[i:]))
		default:
			b.I64[elem] = int64(binary.LittleEndian.Uint64(p[i:]))
		}
	}
	return nil
}

// checkSpan validates a byte range against the buffer's extent and element
// alignment.
func (b *Buffer) checkSpan(off, n int) error {
	es := int(b.Kind.Size())
	total := int(b.Bytes())
	if off < 0 || n < 0 || off+n > total {
		return fmt.Errorf("kernels: byte span [%d,%d) outside buffer of %d bytes", off, off+n, total)
	}
	if off%es != 0 || n%es != 0 {
		return fmt.Errorf("kernels: byte span [%d,%d) not aligned to %d-byte elements", off, off+n, es)
	}
	return nil
}
