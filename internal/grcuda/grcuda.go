// Package grcuda implements the single-node polyglot GPU runtime GrOUT
// builds on (Parravicini et al., IPDPS'21): a Local DAG of Computational
// Elements, automatic dependency tracking, and a runtime stream scheduler
// that spreads independent CEs over the node's GPUs and CUDA streams
// (paper Algorithm 2). GrOUT embeds one instance per Worker; used
// standalone it is the paper's single-node baseline.
package grcuda

import (
	"fmt"

	"grout/internal/dag"
	"grout/internal/gpusim"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/minicuda"
	"grout/internal/sim"
)

// ArrayMeta is the location-independent description of a framework-managed
// array.
type ArrayMeta struct {
	ID   dag.ArrayID
	Kind memmodel.ElemKind
	Len  int64
}

// Bytes reports the array's size.
func (m ArrayMeta) Bytes() memmodel.Bytes {
	return memmodel.Bytes(m.Len) * m.Kind.Size()
}

// Array is a UVM array managed by a runtime instance.
type Array struct {
	ArrayMeta
	// Alloc is the backing simulated UVM allocation.
	Alloc gpusim.AllocID
	// Buf holds real element data when the runtime executes numerically;
	// nil in cost-model-only simulations.
	Buf *kernels.Buffer
}

// Value is one actual argument of a kernel invocation: an array or a
// scalar.
type Value struct {
	Arr    *Array
	Scalar float64
}

// ArrValue wraps an array argument.
func ArrValue(a *Array) Value { return Value{Arr: a} }

// ScalarValue wraps a scalar argument.
func ScalarValue(v float64) Value { return Value{Scalar: v} }

// Invocation is a kernel launch request.
type Invocation struct {
	Kernel string
	// Grid and Block are the launch configuration; they are carried for
	// API fidelity (the cost model derives work from arguments).
	Grid, Block int
	Args        []Value
}

// Options tunes a runtime instance.
type Options struct {
	// MaxStreamsPerDevice caps stream creation (GrCUDA creates streams on
	// demand). Zero means the default of 16.
	MaxStreamsPerDevice int
	// ExecuteNumeric makes the runtime allocate host buffers and run
	// kernels' numeric implementations alongside the cost model.
	ExecuteNumeric bool
}

// CERecord is the execution record of one CE, for tests and traces.
type CERecord struct {
	CE     dag.CEID
	Label  string
	Device int
	Stream int
	Start  sim.VirtualTime
	End    sim.VirtualTime
	Regime gpusim.Regime
}

// Runtime is a single-node GrCUDA engine.
type Runtime struct {
	node    *gpusim.Node
	reg     *kernels.Registry
	opts    Options
	graph   *dag.Graph
	arrays  map[dag.ArrayID]*Array
	nextArr dag.ArrayID
	// ceEnd maps each CE to its completion time; ceDev/ceStream record
	// placement for stream reuse.
	ceEnd    map[dag.CEID]sim.VirtualTime
	ceDev    map[dag.CEID]int
	ceStream map[dag.CEID]int
	records  []CERecord
	elapsed  sim.VirtualTime
	// per-Submit scratch buffers (the runtime is single-goroutine).
	metasBuf    []kernels.ArgMeta
	bindingsBuf []gpusim.ArgBinding
}

// NewRuntime builds a runtime over a simulated node and kernel registry.
func NewRuntime(node *gpusim.Node, reg *kernels.Registry, opts Options) *Runtime {
	if opts.MaxStreamsPerDevice <= 0 {
		opts.MaxStreamsPerDevice = 16
	}
	return &Runtime{
		node:     node,
		reg:      reg,
		opts:     opts,
		graph:    dag.New(),
		arrays:   make(map[dag.ArrayID]*Array),
		nextArr:  1,
		ceEnd:    make(map[dag.CEID]sim.VirtualTime),
		ceDev:    make(map[dag.CEID]int),
		ceStream: make(map[dag.CEID]int),
	}
}

// Node exposes the underlying simulated node.
func (r *Runtime) Node() *gpusim.Node { return r.node }

// Graph exposes the Local DAG.
func (r *Runtime) Graph() *dag.Graph { return r.graph }

// Registry exposes the kernel registry.
func (r *Runtime) Registry() *kernels.Registry { return r.reg }

// Records returns the per-CE execution trace.
func (r *Runtime) Records() []CERecord { return r.records }

// Elapsed reports the makespan: the completion time of the latest CE.
func (r *Runtime) Elapsed() sim.VirtualTime { return r.elapsed }

// NewArray allocates a framework-managed array with an automatic ID.
func (r *Runtime) NewArray(kind memmodel.ElemKind, n int64) (*Array, error) {
	id := r.nextArr
	r.nextArr++
	return r.NewArrayWithID(id, kind, n)
}

// NewArrayWithID allocates an array under a caller-chosen global ID (used
// by GrOUT workers mirroring controller arrays).
func (r *Runtime) NewArrayWithID(id dag.ArrayID, kind memmodel.ElemKind, n int64) (*Array, error) {
	if n <= 0 {
		return nil, fmt.Errorf("grcuda: invalid array length %d", n)
	}
	if _, dup := r.arrays[id]; dup {
		return nil, fmt.Errorf("grcuda: array %d already exists", id)
	}
	meta := ArrayMeta{ID: id, Kind: kind, Len: n}
	if err := r.node.AllocWithID(gpusim.AllocID(id), meta.Bytes()); err != nil {
		return nil, fmt.Errorf("grcuda: allocating array %d: %w", id, err)
	}
	arr := &Array{ArrayMeta: meta, Alloc: gpusim.AllocID(id)}
	if r.opts.ExecuteNumeric {
		arr.Buf = kernels.NewBuffer(kind, int(n))
	}
	r.arrays[id] = arr
	if id >= r.nextArr {
		r.nextArr = id + 1
	}
	return arr, nil
}

// Array returns the array with the given ID, or nil.
func (r *Runtime) Array(id dag.ArrayID) *Array { return r.arrays[id] }

// FreeArray releases an array.
func (r *Runtime) FreeArray(id dag.ArrayID) error {
	arr, ok := r.arrays[id]
	if !ok {
		return fmt.Errorf("grcuda: free of unknown array %d", id)
	}
	if err := r.node.Free(arr.Alloc); err != nil {
		return err
	}
	delete(r.arrays, id)
	return nil
}

// metasOf builds scheduler-visible argument metadata from values.
func metasOf(args []Value) []kernels.ArgMeta {
	metas := make([]kernels.ArgMeta, len(args))
	fillMetas(metas, args)
	return metas
}

func fillMetas(metas []kernels.ArgMeta, args []Value) {
	for i, v := range args {
		if v.Arr != nil {
			metas[i] = kernels.ArgMeta{IsBuffer: true, Len: v.Arr.Len}
		} else {
			metas[i] = kernels.ArgMeta{Scalar: v.Scalar}
		}
	}
}

// Submit schedules a kernel invocation: it enters the Local DAG, gets a
// device and stream from the intra-node policy, and executes on the
// simulated node. The launch starts no earlier than ready (the Controller
// passes transfer-completion times here). Returns the completion time.
func (r *Runtime) Submit(inv Invocation, ready sim.VirtualTime) (sim.VirtualTime, error) {
	def, ok := r.reg.Lookup(inv.Kernel)
	if !ok {
		return 0, fmt.Errorf("grcuda: unknown kernel %q", inv.Kernel)
	}
	if len(inv.Args) != len(def.Sig.Params) {
		return 0, fmt.Errorf("grcuda: %s wants %d arguments, got %d",
			inv.Kernel, len(def.Sig.Params), len(inv.Args))
	}
	for i, v := range inv.Args {
		if def.Sig.Params[i].Pointer && v.Arr == nil {
			return 0, fmt.Errorf("grcuda: %s argument %d must be an array", inv.Kernel, i)
		}
		if !def.Sig.Params[i].Pointer && v.Arr != nil {
			return 0, fmt.Errorf("grcuda: %s argument %d must be a scalar", inv.Kernel, i)
		}
	}

	if cap(r.metasBuf) < len(inv.Args) {
		r.metasBuf = make([]kernels.ArgMeta, len(inv.Args))
	}
	metas := r.metasBuf[:len(inv.Args)]
	fillMetas(metas, inv.Args)
	accs := def.Access(metas)

	// Build the CE and resolve dependencies (Local DAG).
	var dagAccs []dag.Access
	for i, v := range inv.Args {
		if v.Arr == nil {
			continue
		}
		dagAccs = append(dagAccs, dag.Access{Array: v.Arr.ID, Mode: accs[i].Mode})
	}
	ce := r.graph.NewCE(inv.Kernel, dagAccs, nil)
	ancestors := r.graph.Add(ce)

	depReady := ready
	for _, a := range ancestors {
		if end := r.ceEnd[a.CE.ID]; end > depReady {
			depReady = end
		}
	}

	dev := r.pickDevice(inv.Args)
	stream := r.pickStream(dev, ancestors, depReady)

	// Bind gpusim arguments (gpusim builds its own plans; the binding
	// slice is scratch).
	bindings := r.bindingsBuf[:0]
	for i, v := range inv.Args {
		if v.Arr == nil {
			continue
		}
		bindings = append(bindings, gpusim.ArgBinding{Alloc: v.Arr.Alloc, Access: accs[i]})
	}
	r.bindingsBuf = bindings[:0]
	cost := def.CostLaunch(inv.Grid, inv.Block, metas)
	res, err := r.node.Launch(dev, stream, gpusim.KernelCost{
		Name:          inv.Kernel,
		Elements:      cost.Elements,
		OpsPerElement: cost.OpsPerElement,
	}, bindings, depReady)
	if err != nil {
		return 0, err
	}

	r.ceEnd[ce.ID] = res.Interval.End
	r.ceDev[ce.ID] = dev
	r.ceStream[ce.ID] = stream
	if res.Interval.End > r.elapsed {
		r.elapsed = res.Interval.End
	}
	r.records = append(r.records, CERecord{
		CE: ce.ID, Label: inv.Kernel, Device: dev, Stream: stream,
		Start: res.Interval.Start, End: res.Interval.End, Regime: res.Regime,
	})

	if r.opts.ExecuteNumeric {
		if err := r.executeNumeric(def, inv); err != nil {
			return 0, err
		}
	}
	return res.Interval.End, nil
}

// executeNumeric runs the kernel's host implementation on the arrays'
// buffers.
func (r *Runtime) executeNumeric(def *kernels.Def, inv Invocation) error {
	kargs := make([]kernels.Arg, len(inv.Args))
	for i, v := range inv.Args {
		if v.Arr != nil {
			if v.Arr.Buf == nil {
				return fmt.Errorf("grcuda: array %d has no buffer for numeric execution", v.Arr.ID)
			}
			kargs[i] = kernels.BufArg(v.Arr.Buf)
		} else {
			kargs[i] = kernels.ScalarArg(v.Scalar)
		}
	}
	return def.ExecuteLaunch(inv.Grid, inv.Block, kargs)
}

// pickDevice implements the data-aware device policy: prefer the device
// holding the most argument bytes; break ties toward the device with fewer
// kernels run so cold CEs spread across GPUs.
func (r *Runtime) pickDevice(args []Value) int {
	devs := r.node.Devices()
	best, bestScore, bestKernels := 0, int64(-1), int64(-1)
	for i, d := range devs {
		var score int64
		for _, v := range args {
			if v.Arr != nil {
				score += r.node.ResidentPagesOf(v.Arr.Alloc, i)
			}
		}
		k := d.Stats().KernelsRun
		if score > bestScore || (score == bestScore && (bestKernels == -1 || k < bestKernels)) {
			best, bestScore, bestKernels = i, score, k
		}
	}
	return best
}

// pickStream implements Algorithm 2's stream assignment: a CE with a
// single same-device ancestor reuses that ancestor's stream (FIFO ordering
// replaces an explicit wait event); otherwise it takes the earliest-free
// stream, creating a new one if every stream is still busy at depReady and
// the cap allows.
func (r *Runtime) pickStream(dev int, ancestors []*dag.Vertex, depReady sim.VirtualTime) int {
	if len(ancestors) == 1 {
		aid := ancestors[0].CE.ID
		if d, ok := r.ceDev[aid]; ok && d == dev {
			return r.ceStream[aid]
		}
	}
	device := r.node.Device(dev)
	free, idx := device.FreeAt()
	if free > depReady && device.StreamCount() < r.opts.MaxStreamsPerDevice {
		return device.NewStream()
	}
	return idx
}

// HostRead simulates the host consuming an array (e.g. printing results):
// a CE that reads the array after all its producers, pulling device pages
// home. Returns when the host copy is consistent.
func (r *Runtime) HostRead(id dag.ArrayID, ready sim.VirtualTime) (sim.VirtualTime, error) {
	return r.hostOp(id, memmodel.Read, ready)
}

// HostWrite simulates the host (re)initializing an array: device copies
// become stale and the host copy is the only valid one.
func (r *Runtime) HostWrite(id dag.ArrayID, ready sim.VirtualTime) (sim.VirtualTime, error) {
	return r.hostOp(id, memmodel.Write, ready)
}

func (r *Runtime) hostOp(id dag.ArrayID, mode memmodel.AccessMode, ready sim.VirtualTime) (sim.VirtualTime, error) {
	arr, ok := r.arrays[id]
	if !ok {
		return 0, fmt.Errorf("grcuda: host op on unknown array %d", id)
	}
	label := "host-read"
	if mode.Writes() {
		label = "host-write"
	}
	ce := r.graph.NewCE(label, []dag.Access{{Array: id, Mode: mode}}, nil)
	ancestors := r.graph.Add(ce)
	depReady := ready
	for _, a := range ancestors {
		if end := r.ceEnd[a.CE.ID]; end > depReady {
			depReady = end
		}
	}
	var end sim.VirtualTime
	if mode.Writes() {
		// Overwrite: stale device pages are dropped, no write-back.
		if err := r.node.Invalidate(arr.Alloc); err != nil {
			return 0, err
		}
		end = depReady
	} else {
		iv, err := r.node.HostTouch(arr.Alloc, mode, 1, depReady)
		if err != nil {
			return 0, err
		}
		end = iv.End
	}
	r.ceEnd[ce.ID] = end
	if end > r.elapsed {
		r.elapsed = end
	}
	r.records = append(r.records, CERecord{CE: ce.ID, Label: label, Device: -1, Stream: -1,
		Start: depReady, End: end})
	return end, nil
}

// CEEnd reports the completion time of a CE (0 if unknown).
func (r *Runtime) CEEnd(id dag.CEID) sim.VirtualTime { return r.ceEnd[id] }

// BuildKernel compiles a mini-CUDA kernel from source (the NVRTC path of
// GrCUDA's buildkernel) and registers it with the runtime. Repeated builds
// of the same source resolve through the registry's source cache — and,
// below it, minicuda's compiled-program cache — without recompiling.
func (r *Runtime) BuildKernel(src, signature string) (*kernels.Def, error) {
	key := minicuda.CacheKey(src, signature)
	if name, ok := r.reg.CachedSource(key); ok {
		if def, ok := r.reg.Lookup(name); ok {
			return def, nil
		}
	}
	def, err := minicuda.Compile(src, signature)
	if err != nil {
		return nil, err
	}
	if _, exists := r.reg.Lookup(def.Name); !exists {
		if err := r.reg.Register(def); err != nil {
			return nil, err
		}
	}
	r.reg.CacheSource(key, def.Name)
	return def, nil
}

// ArrayCount reports how many arrays the runtime currently manages.
func (r *Runtime) ArrayCount() int { return len(r.arrays) }

// Advise applies a cudaMemAdvise-style hint to an array (the manual
// hand-tuning path of paper §II-A). preferredDevice is used by
// AdvisePreferredLocation.
func (r *Runtime) Advise(id dag.ArrayID, adv gpusim.Advise, preferredDevice int) error {
	arr, ok := r.arrays[id]
	if !ok {
		return fmt.Errorf("grcuda: advise on unknown array %d", id)
	}
	return r.node.SetAdvise(arr.Alloc, adv, preferredDevice)
}

// Prefetch issues a cudaMemPrefetchAsync-style bulk migration of the
// array to a device, overlapping with other work. Returns its completion
// time.
func (r *Runtime) Prefetch(id dag.ArrayID, device int, ready sim.VirtualTime) (sim.VirtualTime, error) {
	arr, ok := r.arrays[id]
	if !ok {
		return 0, fmt.Errorf("grcuda: prefetch of unknown array %d", id)
	}
	iv, err := r.node.Prefetch(arr.Alloc, device, ready)
	if err != nil {
		return 0, err
	}
	if iv.End > r.elapsed {
		r.elapsed = iv.End
	}
	return iv.End, nil
}
