package grcuda

import (
	"testing"

	"grout/internal/minicuda"
)

// TestBuildKernelSourceCache: a repeated buildkernel of the same (source,
// signature) must resolve entirely from the registry's source cache —
// same Def pointer, and zero additional front-end (lex/parse/check) runs
// in the compiler.
func TestBuildKernelSourceCache(t *testing.T) {
	src := `
__global__ void scale3(float *x, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { x[i] = x[i] * 3.0; }
}`
	sig := "pointer float, sint32"
	r := newRuntime(t, true)

	minicuda.FlushCompileCache()
	d1, err := r.BuildKernel(src, sig)
	if err != nil {
		t.Fatal(err)
	}
	hits0, _, frontend0 := minicuda.CompileStats()
	for i := 0; i < 5; i++ {
		d2, err := r.BuildKernel(src, sig)
		if err != nil {
			t.Fatal(err)
		}
		if d2 != d1 {
			t.Fatalf("rebuild %d returned a different Def", i)
		}
	}
	hits1, _, frontend1 := minicuda.CompileStats()
	if frontend1 != frontend0 {
		t.Fatalf("rebuilds re-ran the compiler front end (%d -> %d)", frontend0, frontend1)
	}
	// The registry's source cache must short-circuit before the compiler
	// cache: no new compiler-cache hits either.
	if hits1 != hits0 {
		t.Fatalf("rebuilds fell through to the compiler cache (%d -> %d hits)", hits0, hits1)
	}

	// A different signature is a genuinely different build request.
	if _, err := r.BuildKernel(src, ""); err != nil {
		t.Fatal(err)
	}
	if _, _, frontend2 := minicuda.CompileStats(); frontend2 != frontend0+1 {
		t.Fatalf("distinct signature served from source cache")
	}
}
