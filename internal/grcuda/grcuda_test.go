package grcuda

import (
	"math"
	"testing"

	"grout/internal/dag"
	"grout/internal/gpusim"
	"grout/internal/kernels"
	"grout/internal/memmodel"
)

func newRuntime(t testing.TB, numeric bool) *Runtime {
	t.Helper()
	node := gpusim.NewNode(gpusim.OCIWorkerSpec("test"))
	return NewRuntime(node, kernels.StdRegistry(), Options{ExecuteNumeric: numeric})
}

func TestNewArrayAndFree(t *testing.T) {
	r := newRuntime(t, false)
	a, err := r.NewArray(memmodel.Float32, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if a.Bytes() != 4096 {
		t.Fatalf("array bytes = %v", a.Bytes())
	}
	if r.Array(a.ID) != a {
		t.Fatalf("array lookup failed")
	}
	if err := r.FreeArray(a.ID); err != nil {
		t.Fatal(err)
	}
	if r.Array(a.ID) != nil {
		t.Fatalf("freed array still present")
	}
	if err := r.FreeArray(a.ID); err == nil {
		t.Fatalf("double free succeeded")
	}
}

func TestNewArrayValidation(t *testing.T) {
	r := newRuntime(t, false)
	if _, err := r.NewArray(memmodel.Float32, 0); err == nil {
		t.Fatalf("zero-length array accepted")
	}
	if _, err := r.NewArrayWithID(7, memmodel.Float32, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := r.NewArrayWithID(7, memmodel.Float32, 10); err == nil {
		t.Fatalf("duplicate ID accepted")
	}
	// Auto IDs skip past explicit ones.
	a, err := r.NewArray(memmodel.Float32, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID <= 7 {
		t.Fatalf("auto ID %d collided with explicit 7", a.ID)
	}
}

func TestSubmitUnknownKernel(t *testing.T) {
	r := newRuntime(t, false)
	if _, err := r.Submit(Invocation{Kernel: "nope"}, 0); err == nil {
		t.Fatalf("unknown kernel accepted")
	}
}

func TestSubmitArgValidation(t *testing.T) {
	r := newRuntime(t, false)
	a, _ := r.NewArray(memmodel.Float32, 128)
	// fill(x, value, n)
	if _, err := r.Submit(Invocation{Kernel: "fill", Args: []Value{ArrValue(a)}}, 0); err == nil {
		t.Fatalf("arity mismatch accepted")
	}
	if _, err := r.Submit(Invocation{Kernel: "fill",
		Args: []Value{ScalarValue(1), ScalarValue(1), ScalarValue(1)}}, 0); err == nil {
		t.Fatalf("scalar for pointer accepted")
	}
	if _, err := r.Submit(Invocation{Kernel: "fill",
		Args: []Value{ArrValue(a), ArrValue(a), ScalarValue(1)}}, 0); err == nil {
		t.Fatalf("array for scalar accepted")
	}
}

func TestSubmitBuildsDependencies(t *testing.T) {
	r := newRuntime(t, false)
	x, _ := r.NewArray(memmodel.Float32, 1<<20)
	y, _ := r.NewArray(memmodel.Float32, 1<<20)
	n := ScalarValue(float64(1 << 20))

	e1, err := r.Submit(Invocation{Kernel: "fill", Args: []Value{ArrValue(x), ScalarValue(1), n}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// axpy(y, x, 2, n) depends on fill(x) via RAW and on fill(y) if any.
	e2, err := r.Submit(Invocation{Kernel: "axpy",
		Args: []Value{ArrValue(y), ArrValue(x), ScalarValue(2), n}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e2 <= e1 {
		t.Fatalf("dependent kernel finished (%v) before ancestor (%v)", e2, e1)
	}
	if g := r.Graph(); g.Size() != 2 || g.Edges() != 1 {
		t.Fatalf("graph size/edges = %d/%d, want 2/1", g.Size(), g.Edges())
	}
}

func TestIndependentKernelsOverlap(t *testing.T) {
	r := newRuntime(t, false)
	a, _ := r.NewArray(memmodel.Float32, 1<<26)
	b, _ := r.NewArray(memmodel.Float32, 1<<26)
	n := ScalarValue(float64(1 << 26))
	if _, err := r.Submit(Invocation{Kernel: "fill", Args: []Value{ArrValue(a), ScalarValue(1), n}}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit(Invocation{Kernel: "fill", Args: []Value{ArrValue(b), ScalarValue(1), n}}, 0); err != nil {
		t.Fatal(err)
	}
	recs := r.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	// Independent fills must start at the same time (different devices or
	// streams) — transfer/computation overlap.
	if recs[0].Start != 0 || recs[1].Start != 0 {
		t.Fatalf("independent kernels serialized: %+v", recs)
	}
	if recs[0].Device == recs[1].Device && recs[0].Stream == recs[1].Stream {
		t.Fatalf("independent kernels share a stream")
	}
}

func TestDataAwareDevicePlacement(t *testing.T) {
	r := newRuntime(t, false)
	a, _ := r.NewArray(memmodel.Float32, 1<<28) // 1 GiB
	n := ScalarValue(float64(1 << 28))
	if _, err := r.Submit(Invocation{Kernel: "fill", Args: []Value{ArrValue(a), ScalarValue(1), n}}, 0); err != nil {
		t.Fatal(err)
	}
	dev0 := r.Records()[0].Device
	// A second kernel on the same array should follow the data.
	if _, err := r.Submit(Invocation{Kernel: "relu", Args: []Value{ArrValue(a), n}}, 0); err != nil {
		t.Fatal(err)
	}
	if got := r.Records()[1].Device; got != dev0 {
		t.Fatalf("data-aware placement failed: first on %d, second on %d", dev0, got)
	}
}

func TestSingleAncestorReusesStream(t *testing.T) {
	r := newRuntime(t, false)
	a, _ := r.NewArray(memmodel.Float32, 1<<20)
	n := ScalarValue(float64(1 << 20))
	if _, err := r.Submit(Invocation{Kernel: "fill", Args: []Value{ArrValue(a), ScalarValue(1), n}}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit(Invocation{Kernel: "relu", Args: []Value{ArrValue(a), n}}, 0); err != nil {
		t.Fatal(err)
	}
	recs := r.Records()
	if recs[0].Stream != recs[1].Stream || recs[0].Device != recs[1].Device {
		t.Fatalf("chained CE did not reuse ancestor's stream: %+v", recs)
	}
}

func TestNumericExecution(t *testing.T) {
	r := newRuntime(t, true)
	x, _ := r.NewArray(memmodel.Float32, 100)
	n := ScalarValue(100)
	if _, err := r.Submit(Invocation{Kernel: "fill", Args: []Value{ArrValue(x), ScalarValue(3), n}}, 0); err != nil {
		t.Fatal(err)
	}
	y, _ := r.NewArray(memmodel.Float32, 100)
	if _, err := r.Submit(Invocation{Kernel: "fill", Args: []Value{ArrValue(y), ScalarValue(1), n}}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit(Invocation{Kernel: "axpy",
		Args: []Value{ArrValue(y), ArrValue(x), ScalarValue(2), n}}, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got := y.Buf.At(i); got != 7 { // 1 + 2*3
			t.Fatalf("y[%d] = %v, want 7", i, got)
		}
	}
}

func TestBlackScholesEndToEnd(t *testing.T) {
	r := newRuntime(t, true)
	const n = 1000
	spot, _ := r.NewArray(memmodel.Float32, n)
	call, _ := r.NewArray(memmodel.Float32, n)
	put, _ := r.NewArray(memmodel.Float32, n)
	for i := 0; i < n; i++ {
		spot.Buf.Set(i, 50+float64(i)*0.1)
	}
	if _, err := r.Submit(Invocation{Kernel: "blackscholes", Grid: 32, Block: 128,
		Args: []Value{ArrValue(call), ArrValue(put), ArrValue(spot), ScalarValue(n)}}, 0); err != nil {
		t.Fatal(err)
	}
	// Spot check put-call parity on a few entries.
	for _, i := range []int{0, 500, 999} {
		s := spot.Buf.At(i)
		parity := call.Buf.At(i) - put.Buf.At(i) - (s - 100*math.Exp(-0.05))
		if math.Abs(parity) > 1e-2 {
			t.Fatalf("parity violated at %d by %v", i, parity)
		}
	}
}

func TestHostReadAfterKernel(t *testing.T) {
	r := newRuntime(t, false)
	a, _ := r.NewArray(memmodel.Float32, 1<<28)
	n := ScalarValue(float64(1 << 28))
	end, err := r.Submit(Invocation{Kernel: "fill", Args: []Value{ArrValue(a), ScalarValue(1), n}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	readEnd, err := r.HostRead(a.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if readEnd <= end {
		t.Fatalf("host read (%v) did not wait for producer (%v) + migration", readEnd, end)
	}
	if r.Elapsed() != readEnd {
		t.Fatalf("elapsed = %v, want %v", r.Elapsed(), readEnd)
	}
}

func TestHostWriteInvalidatesDeviceCopies(t *testing.T) {
	r := newRuntime(t, false)
	a, _ := r.NewArray(memmodel.Float32, 1<<28)
	n := ScalarValue(float64(1 << 28))
	if _, err := r.Submit(Invocation{Kernel: "fill", Args: []Value{ArrValue(a), ScalarValue(1), n}}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.HostWrite(a.ID, 0); err != nil {
		t.Fatal(err)
	}
	if got := r.Node().ResidentPagesOf(a.Alloc, 0) + r.Node().ResidentPagesOf(a.Alloc, 1); got != 0 {
		t.Fatalf("device copies survive host write: %d pages", got)
	}
	// The next kernel depends on the host write.
	recs := len(r.Records())
	if _, err := r.Submit(Invocation{Kernel: "relu", Args: []Value{ArrValue(a), n}}, 0); err != nil {
		t.Fatal(err)
	}
	_ = recs
	if g := r.Graph(); g.Edges() < 2 {
		t.Fatalf("host write did not enter dependency graph: %d edges", g.Edges())
	}
}

func TestHostOpUnknownArray(t *testing.T) {
	r := newRuntime(t, false)
	if _, err := r.HostRead(99, 0); err == nil {
		t.Fatalf("host read of unknown array succeeded")
	}
	if _, err := r.HostWrite(99, 0); err == nil {
		t.Fatalf("host write of unknown array succeeded")
	}
}

func TestMultiGPUSpreadsLargeWorkload(t *testing.T) {
	r := newRuntime(t, false)
	// Two independent 8 GiB pipelines: the device policy must use both
	// GPUs.
	const elems = int64(8 * memmodel.GiB / 4) // 8 GiB of float32
	a, _ := r.NewArray(memmodel.Float32, elems)
	b, _ := r.NewArray(memmodel.Float32, elems)
	n := ScalarValue(float64(elems))
	if _, err := r.Submit(Invocation{Kernel: "fill", Args: []Value{ArrValue(a), ScalarValue(1), n}}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit(Invocation{Kernel: "fill", Args: []Value{ArrValue(b), ScalarValue(1), n}}, 0); err != nil {
		t.Fatal(err)
	}
	recs := r.Records()
	if recs[0].Device == recs[1].Device {
		t.Fatalf("independent large fills share device %d", recs[0].Device)
	}
}

func TestOversubscriptionVisibleThroughRuntime(t *testing.T) {
	// The same workload at 4 GiB vs 96 GiB per the paper: slowdown far
	// beyond the 24x size ratio.
	run := func(bytes memmodel.Bytes) float64 {
		r := newRuntime(t, false)
		elems := int64(bytes / 4)
		a, err := r.NewArray(memmodel.Float32, elems)
		if err != nil {
			t.Fatal(err)
		}
		n := ScalarValue(float64(elems))
		if _, err := r.Submit(Invocation{Kernel: "relu", Args: []Value{ArrValue(a), n}}, 0); err != nil {
			t.Fatal(err)
		}
		return r.Elapsed().Seconds()
	}
	small := run(4 * memmodel.GiB)
	big := run(96 * memmodel.GiB)
	if big/small < 100 {
		t.Fatalf("96GiB/4GiB slowdown = %.1f, want > 100 (storm regime)", big/small)
	}
}

func TestCERecordRegimes(t *testing.T) {
	r := newRuntime(t, false)
	a, _ := r.NewArray(memmodel.Float32, int64(48*memmodel.GiB/4))
	n := ScalarValue(float64(48 * memmodel.GiB / 4))
	if _, err := r.Submit(Invocation{Kernel: "relu", Args: []Value{ArrValue(a), n}}, 0); err != nil {
		t.Fatal(err)
	}
	if got := r.Records()[0].Regime; got != gpusim.Storm {
		t.Fatalf("48GiB relu regime = %v, want storm", got)
	}
}

func TestCEEndLookup(t *testing.T) {
	r := newRuntime(t, false)
	a, _ := r.NewArray(memmodel.Float32, 1024)
	end, _ := r.Submit(Invocation{Kernel: "relu",
		Args: []Value{ArrValue(a), ScalarValue(1024)}}, 0)
	var firstCE dag.CEID = 1
	if r.CEEnd(firstCE) != end {
		t.Fatalf("CEEnd = %v, want %v", r.CEEnd(firstCE), end)
	}
	if r.CEEnd(999) != 0 {
		t.Fatalf("unknown CE end != 0")
	}
}

func TestStreamCapReached(t *testing.T) {
	node := gpusim.NewNode(gpusim.OCIWorkerSpec("cap"))
	r := NewRuntime(node, kernels.StdRegistry(), Options{MaxStreamsPerDevice: 2})
	// Many big independent kernels: streams are created on demand but
	// never beyond the cap.
	n := ScalarValue(float64(1 << 26))
	for i := 0; i < 6; i++ {
		a, err := r.NewArray(memmodel.Float32, 1<<26)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Submit(Invocation{Kernel: "fill",
			Args: []Value{ArrValue(a), ScalarValue(1), n}}, 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range node.Devices() {
		if d.StreamCount() > 2 {
			t.Fatalf("stream cap exceeded: %d", d.StreamCount())
		}
	}
}

func TestPinnedDataHoldsDevice(t *testing.T) {
	r := newRuntime(t, false)
	a, _ := r.NewArray(memmodel.Float32, int64(memmodel.GiB/4))
	if err := r.Advise(a.ID, gpusim.AdvisePreferredLocation, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Prefetch(a.ID, 1, 0); err != nil {
		t.Fatal(err)
	}
	// The data-aware device policy must now follow the pinned pages.
	if _, err := r.Submit(Invocation{Kernel: "relu",
		Args: []Value{ArrValue(a), ScalarValue(float64(memmodel.GiB / 4))}}, 0); err != nil {
		t.Fatal(err)
	}
	if got := r.Records()[0].Device; got != 1 {
		t.Fatalf("kernel ran on device %d, want pinned device 1", got)
	}
}

func TestBuildKernelOnRuntime(t *testing.T) {
	r := newRuntime(t, true)
	def, err := r.BuildKernel(`
__global__ void halve(float *x, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { x[i] = x[i] / 2.0; }
}`, "pointer float, sint32")
	if err != nil {
		t.Fatal(err)
	}
	if def.Name != "halve" {
		t.Fatalf("name = %q", def.Name)
	}
	// Idempotent re-registration.
	if _, err := r.BuildKernel(`
__global__ void halve(float *x, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { x[i] = x[i] / 2.0; }
}`, ""); err != nil {
		t.Fatal(err)
	}
	a, _ := r.NewArray(memmodel.Float32, 8)
	a.Buf.Fill(10)
	if _, err := r.Submit(Invocation{Kernel: "halve", Grid: 1, Block: 8,
		Args: []Value{ArrValue(a), ScalarValue(8)}}, 0); err != nil {
		t.Fatal(err)
	}
	if a.Buf.At(0) != 5 {
		t.Fatalf("halve result = %v", a.Buf.At(0))
	}
	if _, err := r.BuildKernel("junk", ""); err == nil {
		t.Fatalf("junk source accepted")
	}
}

func TestArrayCount(t *testing.T) {
	r := newRuntime(t, false)
	if r.ArrayCount() != 0 {
		t.Fatalf("fresh runtime has arrays")
	}
	a, _ := r.NewArray(memmodel.Float32, 8)
	if r.ArrayCount() != 1 {
		t.Fatalf("count = %d", r.ArrayCount())
	}
	_ = r.FreeArray(a.ID)
	if r.ArrayCount() != 0 {
		t.Fatalf("count after free = %d", r.ArrayCount())
	}
}
