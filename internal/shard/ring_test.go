package shard

// Consistent-hash ring properties the sharded gateway depends on:
// minimal remapping when the shard count grows, determinism across
// rebuilds (a restarted gateway must route identically), and the
// bounded-load cap.

import (
	"fmt"
	"testing"
)

func ringTenants(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("tenant-%d", i)
	}
	return out
}

// Growing N→N+1 must remap at most about 1/(N+1) of the tenants — the
// consistent-hashing guarantee a modulo router has no hope of meeting.
func TestRingGrowthRemapsBoundedFraction(t *testing.T) {
	const tenants = 1000
	keys := ringTenants(tenants)
	for _, n := range []int{2, 4, 8} {
		before, err := NewRing(n, 200, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		after, err := NewRing(n+1, 200, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range keys {
			if before.Shard(k) != after.Shard(k) {
				moved++
			}
		}
		// Expectation is tenants/(n+1); allow 50% slack for hash
		// variance at 200 vnodes before calling the ring broken.
		bound := tenants/(n+1) + tenants/(2*(n+1))
		if moved > bound {
			t.Errorf("%d→%d shards remapped %d of %d tenants (bound %d)",
				n, n+1, moved, tenants, bound)
		}
		if moved == 0 {
			t.Errorf("%d→%d shards remapped nothing; ring is not spreading", n, n+1)
		}
	}
}

// Two rings with the same parameters — a gateway restart — route every
// tenant identically, and a different seed routes differently.
func TestRingDeterministicAcrossRestarts(t *testing.T) {
	keys := ringTenants(500)
	a, _ := NewRing(8, 0, 0, 0)
	b, _ := NewRing(8, 0, 0, 0)
	other, _ := NewRing(8, 0, 0, 12345)
	same := 0
	for _, k := range keys {
		if a.Shard(k) != b.Shard(k) {
			t.Fatalf("rebuilt ring routed %q differently: %d vs %d", k, a.Shard(k), b.Shard(k))
		}
		if a.Shard(k) == other.Shard(k) {
			same++
		}
	}
	if same == len(keys) {
		t.Fatal("seed has no effect on routing")
	}
}

// Every shard must receive a reasonable share of the keyspace.
func TestRingSpreadsLoad(t *testing.T) {
	const tenants, shards = 2000, 8
	r, _ := NewRing(shards, 0, 0, 0)
	counts := make([]int, shards)
	for _, k := range ringTenants(tenants) {
		counts[r.Shard(k)]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d received no tenants: %v", s, counts)
		}
		if c > 2*tenants/shards {
			t.Errorf("shard %d overloaded: %d of %d (counts %v)", s, c, tenants, counts)
		}
	}
}

// Assign never exceeds the bounded-load cap, even for adversarially
// identical keys, and agrees with Shard when loads are balanced.
func TestRingAssignBoundsLoad(t *testing.T) {
	const shards = 4
	r, _ := NewRing(shards, 0, 0.25, 0)
	loads := make([]int, shards)
	// 100 sessions all named the same thing hash to the same natural
	// shard; the cap must spill them across the fleet.
	for i := 0; i < 100; i++ {
		s := r.Assign("hot-tenant", loads)
		loads[s]++
	}
	total := 0
	max := 0
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if total != 100 {
		t.Fatalf("lost sessions: %v", loads)
	}
	// cap at the final step: ceil((99+1)/4)·1.25 = 31.25 → every shard
	// must stay well under half the sessions.
	if max > 32 {
		t.Errorf("bounded-load cap violated: %v", loads)
	}

	// With all-zero loads, Assign is just Shard.
	empty := make([]int, shards)
	for _, k := range ringTenants(50) {
		if r.Assign(k, empty) != r.Shard(k) {
			t.Fatalf("Assign(%q) with empty loads diverged from Shard", k)
		}
	}
}
