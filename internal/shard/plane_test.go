package shard

// Plane-level tests: partitioning invariants, disjoint array-ID
// namespaces, the cross-shard lease path (bytes move worker→worker over
// the shared fabric, never through a controller host), and lease-rooted
// lineage recovery — a shard that loses every local copy of a leased
// array must recover it bit-identically from the foreign replica.

import (
	"testing"

	"grout/internal/cluster"
	"grout/internal/core"
	"grout/internal/dag"
	"grout/internal/memmodel"
	"grout/internal/policy"
)

const planeElems = 64

func newTestPlane(t *testing.T, shards, workers int, wrap func(core.Fabric) core.Fabric) *Plane {
	t.Helper()
	p, err := New(Options{
		Shards:  shards,
		Workers: workers,
		Core:    core.Options{Numeric: true, Failover: true},
		Wrap:    wrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// Partitions are disjoint, cover the fleet, and every controller
// allocates array IDs in its own namespace.
func TestPlanePartitionsAndIDNamespaces(t *testing.T) {
	p := newTestPlane(t, 3, 8, nil)
	seen := map[cluster.NodeID]int{}
	total := 0
	for s := 0; s < p.Shards(); s++ {
		part := p.Partition(s)
		if len(part) == 0 {
			t.Fatalf("shard %d owns no workers", s)
		}
		total += len(part)
		for _, w := range part {
			if prev, dup := seen[w]; dup {
				t.Fatalf("worker %v in shards %d and %d", w, prev, s)
			}
			seen[w] = s
		}
	}
	if total != 8 {
		t.Fatalf("partitions cover %d of 8 workers", total)
	}
	for s, ctl := range p.Controllers {
		arr, err := ctl.NewArray(memmodel.Float32, planeElems)
		if err != nil {
			t.Fatal(err)
		}
		lo := IDStride * dag.ArrayID(s)
		if arr.ID <= lo || arr.ID > lo+IDStride {
			t.Fatalf("shard %d allocated array %d outside its namespace (%d, %d]",
				s, arr.ID, lo, lo+IDStride)
		}
	}
}

// The placement guard: a shard controller must only ever launch on its
// own partition, even over many CEs.
func TestPlanePlacementStaysInPartition(t *testing.T) {
	p := newTestPlane(t, 2, 4, nil)
	ctl := p.Controllers[0]
	x, err := ctl.NewArray(memmodel.Float32, planeElems)
	if err != nil {
		t.Fatal(err)
	}
	n := core.ScalarRef(float64(planeElems))
	if _, err := ctl.Submit(core.Invocation{Kernel: "fill",
		Args: []core.ArgRef{core.ArrRef(x.ID), core.ScalarRef(2), n}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := ctl.Submit(core.Invocation{Kernel: "relu",
			Args: []core.ArgRef{core.ArrRef(x.ID), n}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ctl.Drain(); err != nil {
		t.Fatal(err)
	}
	allowed := map[cluster.NodeID]bool{}
	for _, w := range p.Partition(0) {
		allowed[w] = true
	}
	for _, tr := range ctl.Traces() {
		if !allowed[tr.Node] {
			t.Fatalf("shard 0 launched CE %d on foreign worker %v", tr.CE, tr.Node)
		}
	}
}

// planeChain runs fill → relu on shard s and returns the array. The
// committed tip then lives only on one of the shard's workers.
func planeChain(t *testing.T, ctl *core.Controller) *core.GlobalArray {
	t.Helper()
	x, err := ctl.NewArray(memmodel.Float32, planeElems)
	if err != nil {
		t.Fatal(err)
	}
	n := core.ScalarRef(float64(planeElems))
	for _, inv := range []core.Invocation{
		{Kernel: "fill", Args: []core.ArgRef{core.ArrRef(x.ID), core.ScalarRef(5), n}},
		{Kernel: "relu", Args: []core.ArgRef{core.ArrRef(x.ID), n}},
	} {
		if _, err := ctl.Submit(inv); err != nil {
			t.Fatal(err)
		}
	}
	if err := ctl.Drain(); err != nil {
		t.Fatal(err)
	}
	return x
}

// Replicate moves the lease worker→worker over the shared fabric: the
// grant lands on a worker the destination shard owns, the owning
// controller records the lease, and the transfer counts as P2P (no
// controller bounce).
func TestPlaneReplicateIsWorkerToWorker(t *testing.T) {
	p := newTestPlane(t, 2, 4, nil)
	ctl := p.Controllers[0]
	x := planeChain(t, ctl)

	p2pBefore := ctl.P2PMoves()
	grant, err := p.Replicate(0, 1, x.ID)
	if err != nil {
		t.Fatal(err)
	}
	if grant.Owner != 0 || grant.Holder != 1 || grant.Array != x.ID {
		t.Fatalf("bad grant: %+v", grant)
	}
	inDst := false
	for _, w := range p.Partition(1) {
		if w == grant.Node {
			inDst = true
		}
	}
	if !inDst {
		t.Fatalf("lease node %v is not in shard 1's partition %v", grant.Node, p.Partition(1))
	}
	if ctl.P2PMoves() != p2pBefore+1 {
		t.Fatalf("lease export did not ride the worker P2P path: %d → %d moves",
			p2pBefore, ctl.P2PMoves())
	}
	if node, ver, ok := ctl.Lease(x.ID); !ok || node != grant.Node || ver != grant.Version {
		t.Fatalf("controller lease record (%v, %d, %v) disagrees with grant %+v",
			node, ver, ok, grant)
	}
}

// The tentpole recovery property: shard 0 loses every local copy of a
// leased array (chaos kills the holding worker) and must republish the
// foreign replica as a recovery root — reads come back bit-identical,
// with no ErrDataLost.
func TestPlaneCrossShardLeaseRecovery(t *testing.T) {
	var chaos *core.ChaosFabric
	p := newTestPlane(t, 2, 4, func(inner core.Fabric) core.Fabric {
		chaos = core.NewChaosFabric(inner, core.ChaosOptions{
			// Worker 2 — the relu target below, so the holder of x's
			// committed tip — dies at its second launch: the
			// sacrificial CE that reveals the death.
			KillAtLaunch: map[cluster.NodeID]int{2: 2},
		})
		return chaos
	})
	ctl := p.Controllers[0]

	// fill(5) → relu leaves x's tip (value 5 everywhere) only on worker
	// 2: round-robin sends fill to worker 1 and relu to worker 2, and
	// relu's in-place write makes worker 2 the sole holder.
	x := planeChain(t, ctl)
	holder := ctl.Traces()[len(ctl.Traces())-1].Node
	if holder != 2 {
		t.Fatalf("scenario assumption broken: relu ran on %v, want worker 2", holder)
	}
	if _, err := p.Replicate(0, 1, x.ID); err != nil {
		t.Fatal(err)
	}

	// A sacrificial CE on a second array trips the scheduled kill on
	// worker 2. Its own dispatch fails over to worker 1; x's only local
	// copy dies with worker 2 and recovery must republish the lease.
	y, err := ctl.NewArray(memmodel.Float32, planeElems)
	if err != nil {
		t.Fatal(err)
	}
	n := core.ScalarRef(float64(planeElems))
	if _, err := ctl.Submit(core.Invocation{Kernel: "fill",
		Args: []core.ArgRef{core.ArrRef(y.ID), core.ScalarRef(1), n}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4 && chaos.Injected() == 0; i++ {
		if _, err := ctl.Submit(core.Invocation{Kernel: "relu",
			Args: []core.ArgRef{core.ArrRef(y.ID), n}}); err != nil {
			t.Fatal(err)
		}
		if err := ctl.Drain(); err != nil {
			t.Fatal(err)
		}
	}
	if chaos.Injected() == 0 {
		t.Fatal("chaos kill never fired; scenario is not exercising recovery")
	}
	if len(ctl.DeadWorkers()) == 0 {
		t.Fatal("controller never wrote the killed worker off")
	}

	// The read hits the loss, recovery republishes the lease replica,
	// and the bytes come back bit-identical.
	if _, err := ctl.HostRead(x.ID); err != nil {
		t.Fatalf("read of leased array after local loss: %v", err)
	}
	if ctl.Recoveries() < 1 {
		t.Fatalf("recoveries = %d, want >= 1 (lease republish should have run)", ctl.Recoveries())
	}
	for i := 0; i < planeElems; i++ {
		if got := x.Buf.At(i); got != 5 {
			t.Fatalf("x[%d] = %v after recovery, want 5", i, got)
		}
	}
}

// Replicating to the same shard or out of range is rejected; leases of
// unknown arrays error instead of panicking.
func TestPlaneReplicateRejectsBadArgs(t *testing.T) {
	p := newTestPlane(t, 2, 4, nil)
	x := planeChain(t, p.Controllers[0])
	if _, err := p.Replicate(0, 0, x.ID); err == nil {
		t.Fatal("same-shard replicate accepted")
	}
	if _, err := p.Replicate(0, 5, x.ID); err == nil {
		t.Fatal("out-of-range replicate accepted")
	}
	if _, err := p.Replicate(1, 0, x.ID); err == nil {
		t.Fatal("lease of an array shard 1 never allocated accepted")
	}
}

// Satellite regression: PartitionFabric.Healthy used to answer from the
// full fleet while Workers() was partition-narrowed, so after shard 0
// retired a worker, shard 1's fabric still reported it healthy and
// cross-shard machinery could schedule against a drained node. The
// plane-wide retired set makes every shard's Healthy answer agree.
func TestPartitionFabricHealthyAfterRetire(t *testing.T) {
	p := newTestPlane(t, 2, 4, nil)
	w := p.Partition(0)[0]
	// Run a chain first so the retire path has real replicas to walk.
	planeChain(t, p.Controllers[0])
	if !p.pfs[0].Healthy(w) || !p.pfs[1].Healthy(w) {
		t.Fatalf("worker %v unhealthy before retire", w)
	}
	if err := p.RetireWorker(0, w); err != nil {
		t.Fatal(err)
	}
	// EVERY shard's fabric must agree the node is out...
	for s, pf := range p.pfs {
		if pf.Healthy(w) {
			t.Fatalf("shard %d still reports retired worker %v healthy", s, w)
		}
	}
	// ...while the partition view is unchanged: retirement is
	// membership, not re-partitioning.
	if got := p.pfs[0].Workers(); len(got) != len(p.Partition(0)) {
		t.Fatalf("retire changed the partition view: %v", got)
	}
	// Retiring through the wrong shard is rejected.
	if err := p.RetireWorker(1, w); err == nil {
		t.Fatal("retiring a foreign shard's worker succeeded")
	}
	// Re-activation restores health everywhere.
	if err := p.AddWorker(0, w); err != nil {
		t.Fatal(err)
	}
	for s, pf := range p.pfs {
		if !pf.Healthy(w) {
			t.Fatalf("shard %d reports re-added worker %v unhealthy", s, w)
		}
	}
	// A failed controller-side add must not flip the plane-wide mark:
	// double-adding errors and w stays healthy.
	if err := p.AddWorker(0, w); err == nil {
		t.Fatal("double add succeeded")
	}
	if !p.pfs[0].Healthy(w) {
		t.Fatal("failed add rolled back the health mark of an active worker")
	}
}

// The Restricted policy clamp (defense in depth behind the partition
// fabric) filters foreign candidates and keeps batch/stall forwarding.
func TestRestrictedPolicyClamps(t *testing.T) {
	allowed := []cluster.NodeID{3, 4}
	r := policy.Restrict(policy.NewRoundRobin(), allowed)
	req := policy.Request{Nodes: []policy.NodeInfo{{ID: 1}, {ID: 2}, {ID: 3}, {ID: 4}}}
	for i := 0; i < 6; i++ {
		w := r.Assign(req)
		if w != 3 && w != 4 {
			t.Fatalf("restricted policy escaped its partition: %v", w)
		}
	}
	// No allowed candidate at all: clamp round-robin instead of
	// panicking or escaping.
	w := r.Assign(policy.Request{Nodes: []policy.NodeInfo{{ID: 7}}})
	if w != 3 && w != 4 {
		t.Fatalf("clamp fallback escaped: %v", w)
	}
	if r.NeedsDataView() {
		t.Fatal("round-robin needs no data view; wrapper must forward that")
	}
}
