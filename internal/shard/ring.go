// Package shard implements the sharded control plane (DESIGN.md §5.8):
// N core.Controller shards, each owning a static partition of one worker
// fleet, fronted by a gateway that routes every tenant to exactly one
// shard. Routing uses a seeded consistent-hash ring with virtual nodes
// and bounded loads, so adding a shard remaps only ~1/N of the tenants
// and a restarted gateway reproduces the same assignment. Cross-shard
// reads ride the worker P2P framed path via core.Controller.LeaseArray:
// the owning shard serves a lease and bytes move worker→worker without
// bouncing through a controller host.
package shard

import (
	"fmt"
	"sort"
)

const (
	// DefaultVNodes is the virtual-node count per shard: enough that the
	// ring's load spread stays within a few percent at tens of shards.
	DefaultVNodes = 160
	// DefaultEpsilon is the bounded-load slack: no shard carries more
	// than ceil((tenants+1)/shards)·(1+ε) tenants.
	DefaultEpsilon = 0.25
	// DefaultSeed keys the ring hash. Any two gateways built with the
	// same seed, shard count and vnode count route identically — that is
	// what makes routing survive a gateway restart.
	DefaultSeed = 0x6772_6f75_7421 // "grout!"
)

// Ring is a seeded consistent-hash ring over shard indices. It is
// immutable after construction and safe for concurrent readers.
type Ring struct {
	shards  int
	eps     float64
	seed    uint64
	hashes  []uint64 // sorted vnode positions
	owners  []int    // owners[i] = shard owning hashes[i]
}

// NewRing builds a ring of n shards with vnodes virtual nodes per shard
// (0 = DefaultVNodes), slack eps (0 = DefaultEpsilon) and the given hash
// seed (0 = DefaultSeed).
func NewRing(n, vnodes int, eps float64, seed uint64) (*Ring, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: ring needs at least one shard, got %d", n)
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	if seed == 0 {
		seed = DefaultSeed
	}
	r := &Ring{
		shards: n,
		eps:    eps,
		seed:   seed,
		hashes: make([]uint64, 0, n*vnodes),
		owners: make([]int, 0, n*vnodes),
	}
	type vn struct {
		h     uint64
		owner int
	}
	vns := make([]vn, 0, n*vnodes)
	for s := 0; s < n; s++ {
		for v := 0; v < vnodes; v++ {
			vns = append(vns, vn{r.hash(fmt.Sprintf("shard-%d-vnode-%d", s, v)), s})
		}
	}
	sort.Slice(vns, func(i, j int) bool {
		if vns[i].h != vns[j].h {
			return vns[i].h < vns[j].h
		}
		return vns[i].owner < vns[j].owner // deterministic on (vanishingly rare) collisions
	})
	for _, x := range vns {
		r.hashes = append(r.hashes, x.h)
		r.owners = append(r.owners, x.owner)
	}
	return r, nil
}

// Shards reports the ring's shard count.
func (r *Ring) Shards() int { return r.shards }

// hash is seeded FNV-1a: cheap, dependency-free, and stable across
// builds (unlike maphash, whose seed cannot be pinned).
func (r *Ring) hash(key string) uint64 {
	const prime = 1099511628211
	h := 14695981039346656037 ^ r.seed
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	// One final mix so seeds differing in high bits still scatter.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// Shard routes key to its owning shard, ignoring load (pure consistent
// hashing). Deterministic for a given (seed, shards, vnodes).
func (r *Ring) Shard(key string) int {
	return r.owners[r.slot(key)]
}

func (r *Ring) slot(key string) int {
	h := r.hash(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return i
}

// Assign routes key with bounded loads: loads[s] is shard s's current
// tenant count, and a shard already at the cap ceil((total+1)/N)·(1+ε)
// is skipped by walking the ring clockwise to the next distinct shard.
// With well-spread keys the walk almost never fires; it exists so one
// hot prefix cannot pile every tenant onto one controller.
func (r *Ring) Assign(key string, loads []int) int {
	if len(loads) != r.shards {
		return r.Shard(key)
	}
	total := 0
	for _, l := range loads {
		total += l
	}
	cap := int(float64((total+r.shards)/r.shards) * (1 + r.eps))
	if cap < 1 {
		cap = 1
	}
	start := r.slot(key)
	for off := 0; off < len(r.hashes); off++ {
		s := r.owners[(start+off)%len(r.hashes)]
		if loads[s] < cap {
			return s
		}
	}
	return r.owners[start] // all at cap: fall back to the natural owner
}
