package shard

// plane.go assembles the sharded control plane: one simulated worker
// fleet, N core.Controller shards each scheduling over a static
// contiguous partition of it, and the lease plumbing that lets a shard
// export an array replica to a foreign shard's worker over the shared
// fabric (core.Controller.LeaseArray). The gateway (internal/server)
// holds a Plane and routes tenants with Route; everything here is also
// usable directly from tests and benchmarks.

import (
	"fmt"
	"sort"
	"sync"

	"grout/internal/cluster"
	"grout/internal/core"
	"grout/internal/dag"
	"grout/internal/grcuda"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/policy"
	"grout/internal/sim"
	"grout/internal/transport"
)

// IDStride separates shard array-ID namespaces: shard s allocates IDs in
// (s·IDStride, (s+1)·IDStride]. 2^40 IDs per shard is unreachable in
// practice and keeps cross-shard lease replicas collision-free on the
// shared worker runtimes (core.Options.ArrayIDBase).
const IDStride dag.ArrayID = 1 << 40

// Options configures a Plane.
type Options struct {
	// Shards is the controller shard count (≥1).
	Shards int
	// Workers is the total fleet size, split contiguously across shards
	// (the first Workers mod Shards partitions get one extra worker).
	// Every shard must own at least one worker.
	Workers int
	// NewPolicy builds shard s's scheduling policy. Policies keep
	// internal state, so each shard needs its own instance. nil defaults
	// to round-robin.
	NewPolicy func(s int) (policy.Policy, error)
	// Core configures every shard controller. Registry defaults to one
	// shared kernels.StdRegistry; ArrayIDBase is overwritten per shard.
	Core core.Options
	// Wrap, when non-nil, wraps the full-fleet fabric before
	// partitioning — fault-injection tests hand in core.NewChaosFabric
	// here so every shard (and the cross-shard lease path) sees the
	// same fault schedule.
	Wrap func(core.Fabric) core.Fabric
	// Seed, VNodes and Epsilon configure the routing ring (zero values
	// take the ring defaults).
	Seed   uint64
	VNodes int
	// Epsilon is the bounded-load slack (DefaultEpsilon when zero).
	Epsilon float64
}

// Plane is a sharded control plane over one worker fleet.
type Plane struct {
	ring *Ring
	// Cluster is the shared simulated fleet.
	Cluster *cluster.Cluster
	// Fabric is the unpartitioned full-fleet fabric (wrapped, when
	// Options.Wrap was set); cross-shard lease bytes move over it.
	Fabric core.Fabric
	// Controllers holds one controller per shard.
	Controllers []*core.Controller
	parts       [][]cluster.NodeID
	// retired is the plane-wide set of drained workers, shared by every
	// shard's PartitionFabric so Healthy answers consistently fleet-wide:
	// after one shard retires a node, no other shard's lease probing or
	// failover may treat it as schedulable (the Healthy/Workers
	// inconsistency regression, TestPartitionFabricHealthyAfterRetire).
	retired *retiredSet
	// pfs keeps each shard's partition fabric for the retire plumbing
	// (and the regression test).
	pfs []*PartitionFabric
}

// retiredSet is a concurrency-safe set of retired workers.
type retiredSet struct {
	mu sync.RWMutex
	m  map[cluster.NodeID]bool
}

func (r *retiredSet) has(w cluster.NodeID) bool {
	if r == nil {
		return false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[w]
}

func (r *retiredSet) set(w cluster.NodeID, retired bool) {
	r.mu.Lock()
	if r.m == nil {
		r.m = make(map[cluster.NodeID]bool)
	}
	if retired {
		r.m[w] = true
	} else {
		delete(r.m, w)
	}
	r.mu.Unlock()
}

// New builds a sharded plane: the fleet, the per-shard partition
// fabrics, and one controller per shard with a disjoint array-ID base
// and a placement policy clamped to its partition.
func New(opts Options) (*Plane, error) {
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	if opts.Workers < opts.Shards {
		return nil, fmt.Errorf("shard: %d workers cannot cover %d shards", opts.Workers, opts.Shards)
	}
	ring, err := NewRing(opts.Shards, opts.VNodes, opts.Epsilon, opts.Seed)
	if err != nil {
		return nil, err
	}
	reg := opts.Core.Registry
	if reg == nil {
		reg = kernels.StdRegistry()
	}
	clu := cluster.New(cluster.PaperSpec(opts.Workers))
	var full core.Fabric = core.NewLocalFabric(clu, reg, opts.Core.Numeric)
	if opts.Wrap != nil {
		full = opts.Wrap(full)
	}
	// The shards schedule and admit concurrently, but the simulated
	// fleet's virtual timelines are shared mutable state (LocalFabric
	// must not see concurrent operations), so data-path calls from all
	// shards serialize on one fabric lock — the model of one shared
	// physical interconnect under a scaled-out control plane.
	full = &lockedFabric{inner: full}
	workers := append([]cluster.NodeID(nil), full.Workers()...)
	sort.Slice(workers, func(i, j int) bool { return workers[i] < workers[j] })

	p := &Plane{
		ring:    ring,
		Cluster: clu,
		Fabric:  full,
		parts:   make([][]cluster.NodeID, opts.Shards),
		retired: &retiredSet{},
	}
	per, extra := len(workers)/opts.Shards, len(workers)%opts.Shards
	lo := 0
	for s := 0; s < opts.Shards; s++ {
		hi := lo + per
		if s < extra {
			hi++
		}
		p.parts[s] = workers[lo:hi:hi]
		lo = hi
	}
	for s := 0; s < opts.Shards; s++ {
		var pol policy.Policy
		if opts.NewPolicy != nil {
			pol, err = opts.NewPolicy(s)
			if err != nil {
				return nil, fmt.Errorf("shard %d policy: %w", s, err)
			}
		} else {
			pol = policy.NewRoundRobin()
		}
		co := opts.Core
		co.Registry = reg
		co.ArrayIDBase = dag.ArrayID(s) * IDStride
		pf := NewPartitionFabric(full, p.parts[s])
		pf.retired = p.retired
		p.pfs = append(p.pfs, pf)
		p.Controllers = append(p.Controllers,
			core.NewController(pf, policy.Restrict(pol, p.parts[s]), co))
	}
	return p, nil
}

// shardOf validates s and reports whether w belongs to its partition.
func (p *Plane) shardOf(s int, w cluster.NodeID) error {
	if s < 0 || s >= len(p.Controllers) {
		return fmt.Errorf("shard: shard %d out of range (%d shards)", s, len(p.Controllers))
	}
	for _, n := range p.parts[s] {
		if n == w {
			return nil
		}
	}
	return fmt.Errorf("shard: worker %v is not in shard %d's partition", w, s)
}

// RetireWorker gracefully drains worker w out of shard s
// (core.Controller.RetireWorker: migrate sole-copy arrays, free
// replicas, shrink the roster) and marks it retired plane-wide, so every
// shard's fabric — not just shard s's — reports it unhealthy and no
// other shard schedules lease traffic against the drained node. Lease
// replicas other shards already exported onto w stay resident and remain
// valid lineage roots (replayStep pulls bytes without a health probe).
func (p *Plane) RetireWorker(s int, w cluster.NodeID) error {
	if err := p.shardOf(s, w); err != nil {
		return err
	}
	if err := p.Controllers[s].RetireWorker(w); err != nil {
		return err
	}
	p.retired.set(w, true)
	return nil
}

// AddWorker re-activates a previously retired worker on shard s: the
// plane-wide retired mark is lifted first so the controller's health
// probe sees the node alive again.
func (p *Plane) AddWorker(s int, w cluster.NodeID) error {
	if err := p.shardOf(s, w); err != nil {
		return err
	}
	was := p.retired.has(w)
	p.retired.set(w, false)
	if err := p.Controllers[s].AddWorker(w); err != nil {
		p.retired.set(w, was)
		return err
	}
	return nil
}

// Shards reports the shard count.
func (p *Plane) Shards() int { return len(p.Controllers) }

// Partition reports shard s's worker partition (shared slice; do not
// mutate).
func (p *Plane) Partition(s int) []cluster.NodeID { return p.parts[s] }

// Home reports tenant's natural shard, ignoring load: deterministic for
// a given ring seed, so a restarted gateway routes identically.
func (p *Plane) Home(tenant string) int { return p.ring.Shard(tenant) }

// Route routes tenant with bounded loads (loads[s] = shard s's current
// tenant count). Matches server.RouteFunc.
func (p *Plane) Route(tenant string, loads []int) int { return p.ring.Assign(tenant, loads) }

// Replicate exports array id from shard src to a worker owned by shard
// dst over the full-fleet fabric — the worker P2P path, never a
// controller host — and returns the lease grant. The replica is a valid
// lineage recovery root for shard src (core lease.go).
func (p *Plane) Replicate(src, dst int, id dag.ArrayID) (transport.LeaseGrant, error) {
	if src < 0 || src >= len(p.Controllers) || dst < 0 || dst >= len(p.Controllers) {
		return transport.LeaseGrant{}, fmt.Errorf("shard: replicate %d→%d out of range", src, dst)
	}
	if src == dst {
		return transport.LeaseGrant{}, fmt.Errorf("shard: replicate %d→%d is a no-op", src, dst)
	}
	part := p.parts[dst]
	node := part[int(uint64(id)%uint64(len(part)))]
	ver, err := p.Controllers[src].LeaseArray(p.Fabric, id, node)
	if err != nil {
		return transport.LeaseGrant{}, err
	}
	return transport.LeaseGrant{
		Array:   id,
		Version: ver,
		Node:    node,
		Owner:   int32(src),
		Holder:  int32(dst),
	}, nil
}

// Close drains and stops every shard controller, reporting the first
// error. Idempotent and nil-receiver safe.
func (p *Plane) Close() error {
	if p == nil {
		return nil
	}
	var err error
	for _, c := range p.Controllers {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// lockedFabric serializes every operation on an inner fabric with one
// mutex, making a virtual-time fabric safe to share between shard
// controllers. The optional fast paths are forwarded (with fallbacks)
// like PartitionFabric's, and ConcurrentDispatch answers false
// unconditionally: operation order on the shared timelines is
// observable, so dispatch must stay serial per controller.
type lockedFabric struct {
	mu    sync.Mutex
	inner core.Fabric
}

func (f *lockedFabric) Workers() []cluster.NodeID {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.inner.Workers()
}

func (f *lockedFabric) EnsureArray(w cluster.NodeID, meta grcuda.ArrayMeta) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.inner.EnsureArray(w, meta)
}

func (f *lockedFabric) MoveArray(id dag.ArrayID, src, dst cluster.NodeID,
	srcReady sim.VirtualTime, srcBuf, dstBuf *kernels.Buffer) (sim.VirtualTime, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.inner.MoveArray(id, src, dst, srcReady, srcBuf, dstBuf)
}

func (f *lockedFabric) Launch(w cluster.NodeID, inv core.Invocation,
	ready sim.VirtualTime) (sim.VirtualTime, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.inner.Launch(w, inv, ready)
}

func (f *lockedFabric) EstimateTransfer(src, dst cluster.NodeID, n memmodel.Bytes) sim.VirtualTime {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.inner.EstimateTransfer(src, dst, n)
}

func (f *lockedFabric) FreeArray(w cluster.NodeID, id dag.ArrayID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.inner.FreeArray(w, id)
}

func (f *lockedFabric) Healthy(w cluster.NodeID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.inner.Healthy(w)
}

func (f *lockedFabric) EstimateTransferAll(src cluster.NodeID, n memmodel.Bytes,
	dsts []cluster.NodeID, out []sim.VirtualTime) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if be, ok := f.inner.(core.BulkEstimator); ok {
		be.EstimateTransferAll(src, n, dsts, out)
		return
	}
	for _, d := range dsts {
		out[d] = f.inner.EstimateTransfer(src, d, n)
	}
}

func (f *lockedFabric) PredictStall(w cluster.NodeID, add, working memmodel.Bytes,
	pattern memmodel.Pattern) sim.VirtualTime {
	f.mu.Lock()
	defer f.mu.Unlock()
	if sp, ok := f.inner.(core.StallPredictor); ok {
		return sp.PredictStall(w, add, working, pattern)
	}
	return 0
}

func (f *lockedFabric) MoveArrays(dst cluster.NodeID, ids []dag.ArrayID,
	srcReady sim.VirtualTime, bufs []*kernels.Buffer) (sim.VirtualTime, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if bm, ok := f.inner.(core.BulkMover); ok {
		return bm.MoveArrays(dst, ids, srcReady, bufs)
	}
	var at sim.VirtualTime
	for i, id := range ids {
		t, err := f.inner.MoveArray(id, cluster.ControllerID, dst, srcReady, bufs[i], nil)
		if err != nil {
			return 0, err
		}
		if t > at {
			at = t
		}
	}
	return at, nil
}

func (f *lockedFabric) BuildKernel(src, signature string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if kb, ok := f.inner.(core.KernelBuilder); ok {
		return kb.BuildKernel(src, signature)
	}
	return fmt.Errorf("shard: inner fabric cannot build kernels")
}

// PartitionFabric restricts a full-fleet fabric to one shard's worker
// partition: Workers (the placement universe) reports only the
// partition, while data-path operations delegate to the inner fabric —
// a lease replica lives on a foreign worker, and recovery re-ships from
// it over the same wires. The optional fast-path interfaces are
// implemented unconditionally with graceful fallbacks, because
// embedding would hide them from the controller's type assertions.
type PartitionFabric struct {
	inner   core.Fabric
	workers []cluster.NodeID
	// retired, when set (sharded planes), is the plane-wide drained-
	// worker set: Healthy must answer false for a retired node even
	// though the node's runtime still responds, or a shard could
	// schedule lease traffic against a worker another shard drained.
	retired *retiredSet

	bulkEst core.BulkEstimator
	stall   core.StallPredictor
	bulk    core.BulkMover
	kb      core.KernelBuilder
	cd      core.ConcurrentDispatcher
}

// NewPartitionFabric wraps inner, exposing only workers as the
// placement universe.
func NewPartitionFabric(inner core.Fabric, workers []cluster.NodeID) *PartitionFabric {
	f := &PartitionFabric{
		inner:   inner,
		workers: append([]cluster.NodeID(nil), workers...),
	}
	f.bulkEst, _ = inner.(core.BulkEstimator)
	f.stall, _ = inner.(core.StallPredictor)
	f.bulk, _ = inner.(core.BulkMover)
	f.kb, _ = inner.(core.KernelBuilder)
	f.cd, _ = inner.(core.ConcurrentDispatcher)
	return f
}

// Workers implements core.Fabric: the shard's partition only.
func (f *PartitionFabric) Workers() []cluster.NodeID { return f.workers }

// EnsureArray implements core.Fabric.
func (f *PartitionFabric) EnsureArray(w cluster.NodeID, meta grcuda.ArrayMeta) error {
	return f.inner.EnsureArray(w, meta)
}

// MoveArray implements core.Fabric.
func (f *PartitionFabric) MoveArray(id dag.ArrayID, src, dst cluster.NodeID,
	srcReady sim.VirtualTime, srcBuf, dstBuf *kernels.Buffer) (sim.VirtualTime, error) {
	return f.inner.MoveArray(id, src, dst, srcReady, srcBuf, dstBuf)
}

// Launch implements core.Fabric.
func (f *PartitionFabric) Launch(w cluster.NodeID, inv core.Invocation,
	ready sim.VirtualTime) (sim.VirtualTime, error) {
	return f.inner.Launch(w, inv, ready)
}

// EstimateTransfer implements core.Fabric.
func (f *PartitionFabric) EstimateTransfer(src, dst cluster.NodeID, n memmodel.Bytes) sim.VirtualTime {
	return f.inner.EstimateTransfer(src, dst, n)
}

// FreeArray implements core.Fabric.
func (f *PartitionFabric) FreeArray(w cluster.NodeID, id dag.ArrayID) error {
	return f.inner.FreeArray(w, id)
}

// Healthy implements core.Fabric. It answers for any fleet node, not
// just the partition — lineage recovery probes the lease node's health —
// but a node the plane has retired reads unhealthy everywhere, keeping
// the answer consistent with the partitions' post-retirement view: a
// drained node's runtime still responds, yet no shard may schedule
// against it.
func (f *PartitionFabric) Healthy(w cluster.NodeID) bool {
	return !f.retired.has(w) && f.inner.Healthy(w)
}

// EstimateTransferAll implements core.BulkEstimator, looping over
// EstimateTransfer when the inner fabric lacks the fast path.
func (f *PartitionFabric) EstimateTransferAll(src cluster.NodeID, n memmodel.Bytes,
	dsts []cluster.NodeID, out []sim.VirtualTime) {
	if f.bulkEst != nil {
		f.bulkEst.EstimateTransferAll(src, n, dsts, out)
		return
	}
	for _, d := range dsts {
		out[d] = f.inner.EstimateTransfer(src, d, n)
	}
}

// PredictStall implements core.StallPredictor; fabrics without the
// extension are stall-free.
func (f *PartitionFabric) PredictStall(w cluster.NodeID, add, working memmodel.Bytes,
	pattern memmodel.Pattern) sim.VirtualTime {
	if f.stall != nil {
		return f.stall.PredictStall(w, add, working, pattern)
	}
	return 0
}

// MoveArrays implements core.BulkMover, degrading to per-array moves
// when the inner fabric lacks coalescing.
func (f *PartitionFabric) MoveArrays(dst cluster.NodeID, ids []dag.ArrayID,
	srcReady sim.VirtualTime, bufs []*kernels.Buffer) (sim.VirtualTime, error) {
	if f.bulk != nil {
		return f.bulk.MoveArrays(dst, ids, srcReady, bufs)
	}
	var at sim.VirtualTime
	for i, id := range ids {
		t, err := f.inner.MoveArray(id, cluster.ControllerID, dst, srcReady, bufs[i], nil)
		if err != nil {
			return 0, err
		}
		if t > at {
			at = t
		}
	}
	return at, nil
}

// BuildKernel implements core.KernelBuilder when the inner fabric does.
func (f *PartitionFabric) BuildKernel(src, signature string) error {
	if f.kb != nil {
		return f.kb.BuildKernel(src, signature)
	}
	return fmt.Errorf("shard: inner fabric cannot build kernels")
}

// ConcurrentDispatch implements core.ConcurrentDispatcher, forwarding
// the inner fabric's answer (false for virtual-time fabrics).
func (f *PartitionFabric) ConcurrentDispatch() bool {
	return f.cd != nil && f.cd.ConcurrentDispatch()
}
