package cluster

import (
	"testing"
	"testing/quick"

	"grout/internal/memmodel"
	"grout/internal/sim"
)

func TestPaperSpec(t *testing.T) {
	s := PaperSpec(2)
	if len(s.Workers) != 2 {
		t.Fatalf("workers = %d", len(s.Workers))
	}
	if s.Workers[0].TotalDeviceMemory() != 32*memmodel.GiB {
		t.Fatalf("worker device memory = %v", s.Workers[0].TotalDeviceMemory())
	}
	if s.ControllerEgressBW != 2*s.WorkerNICBW {
		t.Fatalf("controller NIC should be 2x worker NIC")
	}
}

func TestNodeIDs(t *testing.T) {
	if ControllerID.IsWorker() {
		t.Fatalf("controller is a worker")
	}
	if !NodeID(1).IsWorker() {
		t.Fatalf("worker1 not a worker")
	}
	if ControllerID.String() != "controller" || NodeID(3).String() != "worker3" {
		t.Fatalf("ID strings wrong")
	}
}

func TestBandwidthMinOfEndpoints(t *testing.T) {
	c := New(PaperSpec(2))
	// Controller (1 GB/s) -> worker (500 MB/s): min is the worker NIC.
	if bw := c.Bandwidth(ControllerID, 1); bw != 500e6 {
		t.Fatalf("controller->worker bw = %v", bw)
	}
	if bw := c.Bandwidth(1, 2); bw != 500e6 {
		t.Fatalf("worker->worker bw = %v", bw)
	}
}

func TestPairOverride(t *testing.T) {
	s := PaperSpec(2)
	s.PairBW = map[[2]NodeID]float64{{1, 2}: 100e6}
	c := New(s)
	if bw := c.Bandwidth(1, 2); bw != 100e6 {
		t.Fatalf("override not applied: %v", bw)
	}
	if bw := c.Bandwidth(2, 1); bw != 500e6 {
		t.Fatalf("reverse direction affected by override: %v", bw)
	}
}

func TestEstimateTransfer(t *testing.T) {
	c := New(PaperSpec(2))
	// 500 MB at 500 MB/s = 1 s + latency.
	got := c.EstimateTransfer(ControllerID, 1, 500*1000*1000)
	want := c.Spec().Latency + sim.VirtualTime(1e9)
	if got != want {
		t.Fatalf("estimate = %v, want %v", got, want)
	}
	if c.EstimateTransfer(1, 1, memmodel.GiB) != 0 {
		t.Fatalf("self transfer not free")
	}
	if c.EstimateTransfer(1, 2, 0) != 0 {
		t.Fatalf("empty transfer not free")
	}
}

func TestTransferOccupiesNICs(t *testing.T) {
	c := New(PaperSpec(3))
	// 500 MB to worker1: the worker NIC (500 MB/s) is the bottleneck, so
	// the transfer takes ~1s, but the controller's 1 GB/s egress is only
	// occupied for 0.5s.
	iv1 := c.Transfer(ControllerID, 1, 500*1000*1000, 0)
	if iv1.Start != 0 {
		t.Fatalf("first transfer start = %v", iv1.Start)
	}
	if iv1.End < sim.VirtualTime(1e9) {
		t.Fatalf("transfer faster than the worker NIC allows: %v", iv1.End)
	}
	// A second transfer to a DIFFERENT worker starts as soon as the
	// controller egress frees (0.5s), overlapping the first — the reason
	// the paper gives the controller a 2x NIC.
	iv2 := c.Transfer(ControllerID, 2, 500*1000*1000, 0)
	if iv2.Start >= iv1.End {
		t.Fatalf("controller could not feed two workers concurrently: start %v", iv2.Start)
	}
	if iv2.Start < sim.VirtualTime(5e8) {
		t.Fatalf("controller egress oversubscribed: start %v", iv2.Start)
	}
	// Worker1 -> worker3 uses different NICs entirely and starts at once.
	iv3 := c.Transfer(1, 3, 500*1000*1000, 0)
	if iv3.Start != 0 {
		t.Fatalf("independent transfer queued unnecessarily: start %v", iv3.Start)
	}
}

func TestTransferIngressContention(t *testing.T) {
	c := New(PaperSpec(3))
	iv1 := c.Transfer(1, 3, 500*1000*1000, 0)
	// Another sender targeting worker3 must wait for its ingress NIC,
	// which is busy for the full second (it is the bottleneck).
	iv2 := c.Transfer(2, 3, 500*1000*1000, 0)
	if iv2.Start < sim.VirtualTime(1e9) {
		t.Fatalf("ingress NIC overlapped: %v < 1s", iv2.Start)
	}
	_ = iv1
}

func TestWorkerAccessors(t *testing.T) {
	c := New(PaperSpec(2))
	if c.WorkerCount() != 2 {
		t.Fatalf("worker count = %d", c.WorkerCount())
	}
	ids := c.Workers()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("workers = %v", ids)
	}
	if c.Worker(1) == nil || c.Worker(2) == nil {
		t.Fatalf("worker accessor returned nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("Worker(0) did not panic")
		}
	}()
	c.Worker(ControllerID)
}

func TestInterconnectMatrix(t *testing.T) {
	c := New(PaperSpec(2))
	m := c.InterconnectMatrix()
	if len(m) != 3 {
		t.Fatalf("matrix size = %d", len(m))
	}
	for i := range m {
		if m[i][i] != 0 {
			t.Fatalf("diagonal not zero at %d", i)
		}
	}
	if m[0][1] != 500e6 || m[1][2] != 500e6 {
		t.Fatalf("matrix bandwidths wrong: %v", m)
	}
}

// Property: transfers to the same worker never start before its ingress
// NIC has drained the previous one, starts are monotone, and estimates are
// monotone in size.
func TestTransferProperties(t *testing.T) {
	f := func(sizes []uint32) bool {
		c := New(PaperSpec(2))
		var prevStart sim.VirtualTime
		var prevIngressBusy sim.VirtualTime
		for _, s := range sizes {
			n := memmodel.Bytes(s%(1<<28)) + 1
			iv := c.Transfer(ControllerID, 1, n, 0)
			// The worker's ingress is the bottleneck: a new transfer
			// cannot start before the previous bytes drained through it.
			if iv.Start < prevStart+prevIngressBusy {
				return false
			}
			prevStart = iv.Start
			prevIngressBusy = sim.VirtualTime(float64(n) / 500e6 * 1e9)
			if iv.End < iv.Start {
				return false
			}
		}
		small := c.EstimateTransfer(ControllerID, 1, memmodel.MiB)
		big := c.EstimateTransfer(ControllerID, 1, memmodel.GiB)
		return big > small
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
