// Package cluster models the distributed system GrOUT runs on: a
// controller node plus N GPU-equipped worker nodes joined by an
// interconnect with per-pair bandwidth. Network transfers occupy the
// sender's egress NIC and the receiver's ingress NIC, so concurrent
// transfers to distinct peers overlap while transfers sharing an endpoint
// queue — the property min-transfer-time scheduling exploits.
package cluster

import (
	"fmt"

	"grout/internal/gpusim"
	"grout/internal/memmodel"
	"grout/internal/sim"
)

// NodeID identifies an endpoint. ControllerID is the controller; workers
// are numbered from 1.
type NodeID int

// ControllerID is the controller endpoint's ID.
const ControllerID NodeID = 0

func (id NodeID) String() string {
	if id == ControllerID {
		return "controller"
	}
	return fmt.Sprintf("worker%d", int(id))
}

// IsWorker reports whether the ID names a worker.
func (id NodeID) IsWorker() bool { return id > 0 }

// Spec describes a cluster: the controller's NIC, each worker's node spec
// and NIC, and optional per-pair bandwidth overrides.
type Spec struct {
	// ControllerEgressBW and ControllerIngressBW are the controller NIC
	// bandwidths in bytes/second (the paper's controller peaks at
	// 8000 Mbit/s ~= 1 GB/s).
	ControllerEgressBW  float64
	ControllerIngressBW float64
	// WorkerNICBW is the per-worker NIC bandwidth (4000 Mbit/s ~= 500
	// MB/s in the paper's OCI setup).
	WorkerNICBW float64
	// Latency is the one-way network latency added to every transfer.
	Latency sim.VirtualTime
	// Workers are the GPU node specifications.
	Workers []gpusim.NodeSpec
	// PairBW optionally overrides bandwidth for a directed pair,
	// modelling heterogeneous interconnects or VNIC SLAs (§IV-D).
	PairBW map[[2]NodeID]float64
}

// PaperSpec returns the paper's OCI deployment with n workers: two-V100
// workers at 4000 Mbit/s, controller at 8000 Mbit/s, 250 µs latency.
func PaperSpec(workers int) Spec {
	s := Spec{
		ControllerEgressBW:  1e9,
		ControllerIngressBW: 1e9,
		WorkerNICBW:         500e6,
		Latency:             sim.VirtualTime(250_000), // 250 µs
	}
	for i := 0; i < workers; i++ {
		s.Workers = append(s.Workers, gpusim.OCIWorkerSpec(fmt.Sprintf("worker%d", i+1)))
	}
	return s
}

// Cluster is the instantiated simulation state.
type Cluster struct {
	spec    Spec
	workers []*gpusim.Node
	egress  map[NodeID]*sim.Timeline
	ingress map[NodeID]*sim.Timeline
}

// New builds a cluster from its spec.
func New(spec Spec) *Cluster {
	c := &Cluster{
		spec:    spec,
		egress:  make(map[NodeID]*sim.Timeline),
		ingress: make(map[NodeID]*sim.Timeline),
	}
	c.egress[ControllerID] = sim.NewTimeline("controller/egress")
	c.ingress[ControllerID] = sim.NewTimeline("controller/ingress")
	for i, ws := range spec.Workers {
		id := NodeID(i + 1)
		c.workers = append(c.workers, gpusim.NewNode(ws))
		c.egress[id] = sim.NewTimeline(id.String() + "/egress")
		c.ingress[id] = sim.NewTimeline(id.String() + "/ingress")
	}
	return c
}

// Spec returns the cluster's specification.
func (c *Cluster) Spec() Spec { return c.spec }

// WorkerCount reports the number of workers.
func (c *Cluster) WorkerCount() int { return len(c.workers) }

// Workers returns all worker node IDs in order.
func (c *Cluster) Workers() []NodeID {
	ids := make([]NodeID, len(c.workers))
	for i := range c.workers {
		ids[i] = NodeID(i + 1)
	}
	return ids
}

// Worker returns the simulated GPU node behind a worker ID; it panics on a
// non-worker ID (scheduler bug).
func (c *Cluster) Worker(id NodeID) *gpusim.Node {
	if !id.IsWorker() || int(id) > len(c.workers) {
		panic(fmt.Sprintf("cluster: no worker %d", int(id)))
	}
	return c.workers[id-1]
}

// Bandwidth reports the effective bytes/second for a directed transfer
// from src to dst: the pair override if present, otherwise the minimum of
// the endpoint NIC rates.
func (c *Cluster) Bandwidth(src, dst NodeID) float64 {
	if bw, ok := c.spec.PairBW[[2]NodeID{src, dst}]; ok {
		return bw
	}
	out := c.spec.WorkerNICBW
	if src == ControllerID {
		out = c.spec.ControllerEgressBW
	}
	in := c.spec.WorkerNICBW
	if dst == ControllerID {
		in = c.spec.ControllerIngressBW
	}
	if in < out {
		return in
	}
	return out
}

// EstimateTransfer predicts the duration of moving n bytes from src to dst
// with an idle network. The min-transfer-time policy uses this to build
// its interconnection matrix.
func (c *Cluster) EstimateTransfer(src, dst NodeID, n memmodel.Bytes) sim.VirtualTime {
	if src == dst || n <= 0 {
		return 0
	}
	bw := c.Bandwidth(src, dst)
	if bw <= 0 {
		return sim.Infinity
	}
	return c.spec.Latency + sim.VirtualTime(float64(n)/bw*1e9)
}

// EstimateTransferAll fills out[dst] with EstimateTransfer(src, dst, n)
// for every dst in dsts (out is indexed by NodeID). When the spec has no
// per-pair overrides the estimate depends only on whether dst is the
// controller, so the common case is one bandwidth computation amortized
// over all destinations.
func (c *Cluster) EstimateTransferAll(src NodeID, n memmodel.Bytes, dsts []NodeID, out []sim.VirtualTime) {
	if len(c.spec.PairBW) != 0 {
		for _, dst := range dsts {
			out[dst] = c.EstimateTransfer(src, dst, n)
		}
		return
	}
	// No overrides: all worker destinations share one rate.
	workerEst := c.EstimateTransfer(src, pickWorkerDst(src, dsts), n)
	for _, dst := range dsts {
		switch {
		case dst == src:
			out[dst] = 0
		case dst == ControllerID:
			out[dst] = c.EstimateTransfer(src, dst, n)
		default:
			out[dst] = workerEst
		}
	}
}

// pickWorkerDst returns a worker destination distinct from src to probe
// the shared worker rate (any one will do; ControllerID if none exists).
func pickWorkerDst(src NodeID, dsts []NodeID) NodeID {
	for _, d := range dsts {
		if d != src && d.IsWorker() {
			return d
		}
	}
	return ControllerID
}

// Transfer simulates moving n bytes from src to dst, not before ready.
// Each endpoint's NIC is occupied for the time *it* needs to push or pull
// the bytes at its own line rate, while the transfer completes at the
// pair's bottleneck rate — so a controller with a 2× NIC feeds two workers
// concurrently, which is exactly why the paper provisions it that way
// (8 Gbit/s vs the workers' 4 Gbit/s).
func (c *Cluster) Transfer(src, dst NodeID, n memmodel.Bytes, ready sim.VirtualTime) sim.Interval {
	if src == dst || n <= 0 {
		return sim.Interval{Start: ready, End: ready}
	}
	pairBW := c.Bandwidth(src, dst)
	egressBW := c.endpointBW(src, true)
	ingressBW := c.endpointBW(dst, false)

	start := sim.Max(ready, sim.Max(c.egress[src].FreeAt(), c.ingress[dst].FreeAt()))
	c.egress[src].Reserve(start, sim.VirtualTime(float64(n)/egressBW*1e9))
	c.ingress[dst].Reserve(start, sim.VirtualTime(float64(n)/ingressBW*1e9))
	end := start + c.spec.Latency + sim.VirtualTime(float64(n)/pairBW*1e9)
	return sim.Interval{Start: start, End: end}
}

// endpointBW reports a node's NIC line rate in the given direction.
func (c *Cluster) endpointBW(id NodeID, egress bool) float64 {
	if id == ControllerID {
		if egress {
			return c.spec.ControllerEgressBW
		}
		return c.spec.ControllerIngressBW
	}
	return c.spec.WorkerNICBW
}

// EgressFreeAt reports when a node's egress NIC next frees up.
func (c *Cluster) EgressFreeAt(id NodeID) sim.VirtualTime { return c.egress[id].FreeAt() }

// IngressFreeAt reports when a node's ingress NIC next frees up.
func (c *Cluster) IngressFreeAt(id NodeID) sim.VirtualTime { return c.ingress[id].FreeAt() }

// InterconnectMatrix returns the bandwidth matrix (bytes/second) between
// all endpoints, as GrOUT constructs at initialization (§IV-D,
// min-transfer-time). Index 0 is the controller.
func (c *Cluster) InterconnectMatrix() [][]float64 {
	n := len(c.workers) + 1
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			if i == j {
				continue
			}
			m[i][j] = c.Bandwidth(NodeID(i), NodeID(j))
		}
	}
	return m
}
