// Package sim provides the discrete-event timing substrate used by the
// GPU, network and cluster simulators. All simulated durations are
// expressed as virtual nanoseconds (VirtualTime); nothing in this package
// ever sleeps or reads the wall clock.
//
// The two building blocks are:
//
//   - Timeline: a single serially-occupied resource (a CUDA stream, a copy
//     engine, a NIC link). Work is "reserved" on a timeline: the caller
//     states the earliest time the work may start and its duration, and the
//     timeline returns the actual [start, end) interval after queueing
//     behind previously reserved work.
//
//   - EventQueue: a priority queue of timestamped events, for simulations
//     that need explicit event interleaving (the UVM fault engine uses it
//     to batch page faults).
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// VirtualTime is a point in simulated time, in nanoseconds since the start
// of the simulation. It is deliberately a distinct type from time.Duration
// so that wall-clock and virtual quantities cannot be mixed by accident.
type VirtualTime int64

// Infinity is a virtual time later than any reachable event.
const Infinity VirtualTime = math.MaxInt64

// Duration converts a virtual-time span to a time.Duration for reporting.
func (t VirtualTime) Duration() time.Duration { return time.Duration(t) }

// Seconds reports the virtual time as floating-point seconds.
func (t VirtualTime) Seconds() float64 { return float64(t) / 1e9 }

// String formats the virtual time using time.Duration notation.
func (t VirtualTime) String() string {
	if t == Infinity {
		return "+inf"
	}
	return time.Duration(t).String()
}

// Max returns the later of a and b.
func Max(a, b VirtualTime) VirtualTime {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b VirtualTime) VirtualTime {
	if a < b {
		return a
	}
	return b
}

// Interval is a half-open [Start, End) span of virtual time.
type Interval struct {
	Start VirtualTime
	End   VirtualTime
}

// Length returns End-Start.
func (iv Interval) Length() VirtualTime { return iv.End - iv.Start }

func (iv Interval) String() string {
	return fmt.Sprintf("[%s, %s)", iv.Start, iv.End)
}

// Timeline models a serially occupied resource. The zero value is a free
// timeline starting at virtual time zero.
type Timeline struct {
	name string
	// freeAt is the earliest time new work can start.
	freeAt VirtualTime
	// busy accumulates total occupied time, for utilization reporting.
	busy VirtualTime
	// reservations counts Reserve calls.
	reservations int
}

// NewTimeline returns a named timeline that is free from time zero.
func NewTimeline(name string) *Timeline {
	return &Timeline{name: name}
}

// Name returns the timeline's diagnostic name.
func (tl *Timeline) Name() string { return tl.name }

// FreeAt reports the earliest time at which new work could start.
func (tl *Timeline) FreeAt() VirtualTime { return tl.freeAt }

// BusyTime reports the cumulative occupied time.
func (tl *Timeline) BusyTime() VirtualTime { return tl.busy }

// Reservations reports how many work items have been reserved.
func (tl *Timeline) Reservations() int { return tl.reservations }

// Reserve queues work of the given duration that may not start before
// earliest, and returns the interval actually occupied. A negative duration
// is treated as zero.
func (tl *Timeline) Reserve(earliest, duration VirtualTime) Interval {
	if duration < 0 {
		duration = 0
	}
	start := Max(earliest, tl.freeAt)
	end := start + duration
	tl.freeAt = end
	tl.busy += duration
	tl.reservations++
	return Interval{Start: start, End: end}
}

// AdvanceTo moves the timeline's free point forward to at least t without
// accounting busy time (models idling until an external event).
func (tl *Timeline) AdvanceTo(t VirtualTime) {
	if t > tl.freeAt {
		tl.freeAt = t
	}
}

// Reset returns the timeline to its initial free state.
func (tl *Timeline) Reset() {
	tl.freeAt = 0
	tl.busy = 0
	tl.reservations = 0
}

// Utilization reports busy time divided by the horizon (the timeline's
// current free point). Returns 0 for an unused timeline.
func (tl *Timeline) Utilization() float64 {
	if tl.freeAt == 0 {
		return 0
	}
	return float64(tl.busy) / float64(tl.freeAt)
}

// Event is a timestamped occurrence in an EventQueue.
type Event struct {
	At      VirtualTime
	Seq     int64 // tie-break: FIFO among equal timestamps
	Payload any
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].Seq < h[j].Seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// EventQueue is a min-heap of events ordered by timestamp, FIFO among ties.
// The zero value is ready to use.
type EventQueue struct {
	h   eventHeap
	seq int64
}

// Push enqueues a payload at virtual time t.
func (q *EventQueue) Push(t VirtualTime, payload any) {
	q.seq++
	heap.Push(&q.h, &Event{At: t, Seq: q.seq, Payload: payload})
}

// Pop removes and returns the earliest event, or nil if the queue is empty.
func (q *EventQueue) Pop() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Event)
}

// Peek returns the earliest event without removing it, or nil if empty.
func (q *EventQueue) Peek() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// Len reports the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// Clock tracks the current virtual time of a simulation. The zero value
// starts at time zero.
type Clock struct {
	now VirtualTime
}

// Now returns the current virtual time.
func (c *Clock) Now() VirtualTime { return c.now }

// AdvanceTo moves the clock forward to t. Moving backwards is a programming
// error and panics: discrete-event time is monotonic.
func (c *Clock) AdvanceTo(t VirtualTime) {
	if t < c.now {
		panic(fmt.Sprintf("sim: clock moved backwards: %s -> %s", c.now, t))
	}
	c.now = t
}

// Advance moves the clock forward by d (negative d panics).
func (c *Clock) Advance(d VirtualTime) {
	if d < 0 {
		panic("sim: negative clock advance")
	}
	c.now += d
}

// Reset returns the clock to time zero.
func (c *Clock) Reset() { c.now = 0 }
