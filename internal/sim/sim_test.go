package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestTimelineReserveSequencing(t *testing.T) {
	tl := NewTimeline("stream0")
	iv1 := tl.Reserve(0, 100)
	if iv1.Start != 0 || iv1.End != 100 {
		t.Fatalf("first reservation = %v, want [0,100)", iv1)
	}
	// Second item wants to start at 50 but must queue behind the first.
	iv2 := tl.Reserve(50, 25)
	if iv2.Start != 100 || iv2.End != 125 {
		t.Fatalf("queued reservation = %v, want [100,125)", iv2)
	}
	// Third item arrives after the timeline is idle: gap is allowed.
	iv3 := tl.Reserve(1000, 10)
	if iv3.Start != 1000 || iv3.End != 1010 {
		t.Fatalf("late reservation = %v, want [1000,1010)", iv3)
	}
	if got := tl.BusyTime(); got != 135 {
		t.Fatalf("busy time = %v, want 135", got)
	}
	if got := tl.Reservations(); got != 3 {
		t.Fatalf("reservations = %d, want 3", got)
	}
}

func TestTimelineNegativeDuration(t *testing.T) {
	tl := NewTimeline("x")
	iv := tl.Reserve(10, -5)
	if iv.Start != 10 || iv.End != 10 {
		t.Fatalf("negative duration reservation = %v, want empty at 10", iv)
	}
}

func TestTimelineAdvanceToAndReset(t *testing.T) {
	tl := NewTimeline("x")
	tl.Reserve(0, 10)
	tl.AdvanceTo(50)
	if tl.FreeAt() != 50 {
		t.Fatalf("FreeAt after AdvanceTo = %v, want 50", tl.FreeAt())
	}
	tl.AdvanceTo(20) // no-op backwards
	if tl.FreeAt() != 50 {
		t.Fatalf("AdvanceTo moved backwards")
	}
	tl.Reset()
	if tl.FreeAt() != 0 || tl.BusyTime() != 0 || tl.Reservations() != 0 {
		t.Fatalf("Reset did not clear state: %+v", tl)
	}
}

func TestTimelineUtilization(t *testing.T) {
	tl := NewTimeline("x")
	if tl.Utilization() != 0 {
		t.Fatalf("fresh timeline utilization != 0")
	}
	tl.Reserve(0, 50)
	tl.AdvanceTo(100)
	if got := tl.Utilization(); got != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
}

// Property: reservations never overlap and never start before requested.
func TestTimelineNoOverlapProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tl := NewTimeline("p")
		var prevEnd VirtualTime
		for i := 0; i < int(n%64)+1; i++ {
			earliest := VirtualTime(rng.Int63n(1000))
			dur := VirtualTime(rng.Int63n(100))
			iv := tl.Reserve(earliest, dur)
			if iv.Start < earliest || iv.Start < prevEnd || iv.End != iv.Start+dur {
				return false
			}
			prevEnd = iv.End
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventQueueOrdering(t *testing.T) {
	var q EventQueue
	q.Push(30, "c")
	q.Push(10, "a")
	q.Push(20, "b")
	q.Push(10, "a2") // FIFO among ties
	want := []string{"a", "a2", "b", "c"}
	for i, w := range want {
		ev := q.Pop()
		if ev == nil || ev.Payload.(string) != w {
			t.Fatalf("pop %d = %v, want %q", i, ev, w)
		}
	}
	if q.Pop() != nil {
		t.Fatalf("pop of empty queue != nil")
	}
}

func TestEventQueuePeekLen(t *testing.T) {
	var q EventQueue
	if q.Peek() != nil || q.Len() != 0 {
		t.Fatalf("empty queue peek/len wrong")
	}
	q.Push(5, 1)
	q.Push(3, 2)
	if q.Peek().At != 3 || q.Len() != 2 {
		t.Fatalf("peek = %v len = %d", q.Peek(), q.Len())
	}
	q.Pop()
	if q.Len() != 1 {
		t.Fatalf("len after pop = %d", q.Len())
	}
}

// Property: events always pop in nondecreasing timestamp order.
func TestEventQueueOrderProperty(t *testing.T) {
	f := func(stamps []int16) bool {
		var q EventQueue
		for _, s := range stamps {
			v := VirtualTime(s)
			if v < 0 {
				v = -v
			}
			q.Push(v, s)
		}
		last := VirtualTime(-1)
		for q.Len() > 0 {
			ev := q.Pop()
			if ev.At < last {
				return false
			}
			last = ev.At
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("fresh clock != 0")
	}
	c.Advance(100)
	c.AdvanceTo(150)
	if c.Now() != 150 {
		t.Fatalf("clock = %v, want 150", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("reset clock != 0")
	}
}

func TestClockBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("AdvanceTo backwards did not panic")
		}
	}()
	var c Clock
	c.Advance(10)
	c.AdvanceTo(5)
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("negative Advance did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestVirtualTimeHelpers(t *testing.T) {
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Fatalf("Max wrong")
	}
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Fatalf("Min wrong")
	}
	if VirtualTime(1500000000).Seconds() != 1.5 {
		t.Fatalf("Seconds wrong")
	}
	if VirtualTime(time.Second.Nanoseconds()).Duration() != time.Second {
		t.Fatalf("Duration wrong")
	}
	if Infinity.String() != "+inf" {
		t.Fatalf("Infinity string = %q", Infinity.String())
	}
	iv := Interval{Start: 10, End: 25}
	if iv.Length() != 15 {
		t.Fatalf("interval length = %v", iv.Length())
	}
	if iv.String() == "" {
		t.Fatalf("interval string empty")
	}
}
