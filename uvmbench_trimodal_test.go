package grout

import (
	"sort"
	"testing"

	"grout/internal/dag"
	"grout/internal/gpusim"
	"grout/internal/memmodel"
	"grout/internal/server"
	"grout/internal/transport"
	"grout/internal/workloads"
)

// trimodalParams keeps every UVMBench workload small enough that the
// three full system stacks below stay fast while still running multiple
// partitions per workload.
func trimodalParams(name string) workloads.Params {
	fp := 512 * memmodel.KiB
	switch name {
	case "triad", "stencil2d":
		fp = memmodel.MiB
	case "bfs", "kmeans", "logreg":
		fp = 256 * memmodel.KiB
	}
	return workloads.Params{Footprint: fp, Blocks: 2}
}

// collectArrays host-reads every live array id and returns its values.
// Ids are allocated sequentially from 1 by every Session backend, so the
// scan shape is identical across modes.
func collectArrays(t *testing.T, s workloads.Session) map[dag.ArrayID][]float64 {
	t.Helper()
	out := make(map[dag.ArrayID][]float64)
	for id := dag.ArrayID(1); id <= 128; id++ {
		if err := s.HostRead(id); err != nil {
			continue
		}
		buf := s.Buffer(id)
		if buf == nil {
			continue
		}
		v := make([]float64, buf.Len())
		for i := range v {
			v[i] = buf.At(i)
		}
		out[id] = v
	}
	return out
}

func runEmbedded(t *testing.T, w *workloads.Workload) map[dag.ArrayID][]float64 {
	t.Helper()
	c, err := NewSimulatedCluster(Config{Workers: 2, Policy: "min-transfer-time", Numeric: true, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := &workloads.Grout{Ctl: c.Controller}
	if err := w.Build(s, trimodalParams(w.Name)); err != nil {
		t.Fatal(err)
	}
	return collectArrays(t, s)
}

func runTCP(t *testing.T, w *workloads.Workload) map[dag.ArrayID][]float64 {
	t.Helper()
	w1, err := transport.NewWorkerServer("127.0.0.1:0", gpusim.OCIWorkerSpec("w1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	w2, err := transport.NewWorkerServer("127.0.0.1:0", gpusim.OCIWorkerSpec("w2"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	r, err := Connect([]string{w1.Addr(), w2.Addr()}, Config{Policy: "min-transfer-time"})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	s := &workloads.Grout{Ctl: r.Controller}
	if err := w.Build(s, trimodalParams(w.Name)); err != nil {
		t.Fatal(err)
	}
	return collectArrays(t, s)
}

func runGateway(t *testing.T, w *workloads.Workload) map[dag.ArrayID][]float64 {
	t.Helper()
	c, err := NewSimulatedCluster(Config{Workers: 2, Policy: "min-transfer-time", Numeric: true, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	g, err := server.New(c.Controller, "127.0.0.1:0", server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	sess, err := Dial(g.Addr(), "uvmbench")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := w.Build(sess, trimodalParams(w.Name)); err != nil {
		t.Fatal(err)
	}
	return collectArrays(t, sess)
}

// TestUVMBenchTrimodal is the portability claim of the workload suite:
// every UVMBench program runs unmodified against the embedded
// controller, a solo TCP fleet, and a multi-tenant gateway, and the
// three stacks produce bit-identical arrays.
func TestUVMBenchTrimodal(t *testing.T) {
	suite := workloads.UVMSuite()
	names := make([]string, 0, len(suite))
	for name := range suite {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			w := suite[name]
			want := runEmbedded(t, w)
			if len(want) == 0 {
				t.Fatal("embedded run produced no arrays")
			}
			for mode, got := range map[string]map[dag.ArrayID][]float64{
				"tcp":     runTCP(t, w),
				"gateway": runGateway(t, w),
			} {
				if len(got) != len(want) {
					t.Fatalf("%s: %d arrays, embedded has %d", mode, len(got), len(want))
				}
				for id, wv := range want {
					gv, ok := got[id]
					if !ok {
						t.Fatalf("%s: array %d missing", mode, id)
					}
					if len(gv) != len(wv) {
						t.Fatalf("%s: array %d length %d, embedded %d", mode, id, len(gv), len(wv))
					}
					for i := range wv {
						if gv[i] != wv[i] {
							t.Fatalf("%s: array %d[%d] = %v, embedded %v", mode, id, i, gv[i], wv[i])
						}
					}
				}
			}
		})
	}
}
